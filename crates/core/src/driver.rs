//! Host-CPU ↔ accelerator handshake (Section V).
//!
//! The paper attaches MatRaptor to a RISC-V host as a co-processor: the
//! host uses a custom `mtx` (move-to-accelerator) instruction to write
//! the pointers of the A/B/C storage arrays into accelerator
//! configuration registers, then writes 1 into register `x0` to start it
//! and polls for completion. This module models that memory-mapped
//! interface so driver-level software (and tests) can exercise the same
//! programming sequence the paper's gem5 + gcc toolchain used.

use matraptor_mem::HbmConfig;
use matraptor_sim::stats::CycleBreakdown;
use matraptor_sparse::{spgemm, C2sr, Csr, SparseError};

use crate::accel::{Accelerator, DeadlineRun, FailedRun, RunOutcome, SliceRun};
use crate::checkpoint::Checkpoint;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::layout::Regions;
use crate::stats::MatRaptorStats;

/// Accelerator configuration-register file, as the host sees it.
///
/// Register indices follow the paper's programming sequence: six pointer
/// registers (info/data for each of A, B, C), two dimension registers,
/// and the `x0` start/status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigRegisters {
    /// Pointer to A's (row length, row pointer) array.
    pub a_info_ptr: u64,
    /// Pointer to A's (value, col id) channel streams.
    pub a_data_ptr: u64,
    /// Pointer to B's info array.
    pub b_info_ptr: u64,
    /// Pointer to B's data streams.
    pub b_data_ptr: u64,
    /// Pointer to the (empty) output info array.
    pub c_info_ptr: u64,
    /// Pointer to the (empty) output data region.
    pub c_data_ptr: u64,
    /// Rows of A.
    pub a_rows: u64,
    /// Rows of B (= columns of A).
    pub b_rows: u64,
    /// The start/status register: host writes 1 to launch; reads 0 while
    /// running... the paper's `x0`.
    pub x0: u64,
}

impl Default for ConfigRegisters {
    fn default() -> Self {
        let r = Regions::DEFAULT;
        ConfigRegisters {
            a_info_ptr: r.a_info,
            a_data_ptr: r.a_data,
            b_info_ptr: r.b_info,
            b_data_ptr: r.b_data,
            c_info_ptr: r.c_info,
            c_data_ptr: r.c_data,
            a_rows: 0,
            b_rows: 0,
            x0: 0,
        }
    }
}

/// One `mtx` message: which register, what value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtxWrite {
    /// Write a pointer register.
    AInfo(u64),
    /// A data pointer.
    AData(u64),
    /// B info pointer.
    BInfo(u64),
    /// B data pointer.
    BData(u64),
    /// C info pointer.
    CInfo(u64),
    /// C data pointer.
    CData(u64),
    /// A's row count.
    ARows(u64),
    /// B's row count.
    BRows(u64),
    /// The start register.
    X0(u64),
}

/// The host-side driver: accumulates `mtx` writes and launches the
/// accelerator when `x0` is set, exactly mirroring the paper's sequence.
///
/// # Example
///
/// ```rust
/// use matraptor_core::{Accelerator, Driver, MatRaptorConfig, MtxWrite};
/// use matraptor_sparse::gen;
///
/// let a = gen::uniform(32, 32, 160, 1);
/// let accel = Accelerator::new(MatRaptorConfig::small_test());
/// let mut driver = Driver::new(&accel);
/// driver.mtx(MtxWrite::ARows(32));
/// driver.mtx(MtxWrite::BRows(32));
/// driver.mtx(MtxWrite::X0(1));
/// let outcome = driver.launch(&a, &a).expect("configured");
/// assert_eq!(outcome.c.rows(), 32);
/// ```
#[derive(Debug)]
pub struct Driver<'a> {
    accel: &'a Accelerator,
    regs: ConfigRegisters,
}

/// Errors the driver reports, either before touching the accelerator or
/// when the accelerator itself terminates a run abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[must_use = "a driver error says how the run terminated; dropping it hides an abnormal termination"]
pub enum DriverError {
    /// `x0` was never written with 1 — the host did not start the run.
    NotStarted,
    /// A dimension register disagrees with the supplied matrix.
    DimensionMismatch {
        /// Which register.
        register: &'static str,
        /// Value the host programmed.
        programmed: u64,
        /// Actual matrix dimension.
        actual: u64,
    },
    /// An input matrix failed structural validation (non-monotone
    /// pointers, out-of-range column ids, non-finite values) before the
    /// accelerator was started.
    InvalidInput(SparseError),
    /// The accelerator declared a fault mid-run and terminated with a
    /// structured diagnostic instead of an output.
    AcceleratorFault(SimError),
    /// A deadline-bounded launch did not finish within its cycle budget
    /// and was cancelled at the deadline (see
    /// [`Driver::launch_with_deadline`]). This is a *scheduling* outcome,
    /// not a hardware fault: the machine was healthy, the job was simply
    /// too expensive for the budget it was admitted under.
    DeadlineExceeded {
        /// The cycle budget the job was cancelled at.
        deadline_cycles: u64,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::NotStarted => write!(f, "x0 register not set; accelerator not started"),
            DriverError::DimensionMismatch { register, programmed, actual } => write!(
                f,
                "register {register} programmed with {programmed} but the matrix has {actual}"
            ),
            DriverError::InvalidInput(e) => write!(f, "input matrix rejected: {e}"),
            DriverError::AcceleratorFault(e) => write!(f, "accelerator fault: {e}"),
            DriverError::DeadlineExceeded { deadline_cycles } => {
                write!(f, "job cancelled at its deadline of {deadline_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// How the driver retries a failed run (the recovery-policy ladder).
///
/// The ladder, top to bottom: the full machine first; if a *transient*
/// fault (deadlock or budget exhaustion) killed it and a checkpoint
/// exists, resume that checkpoint with fault state disarmed; otherwise
/// rebuild progressively smaller machines (half the lanes, then one
/// lane); and as the rung of last resort, compute the product in host
/// software. [`DriverError::AcceleratorFault`] is only returned once the
/// ladder is exhausted or the fault is one no configuration can outrun
/// (malformed input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total attempts allowed, including the initial full-configuration
    /// run. `1` disables recovery entirely.
    pub max_attempts: u32,
    /// Base of the exponential backoff charged before retry `n` (n ≥ 2):
    /// `base << (n - 2)` simulated accelerator cycles. The wait is
    /// *recorded* in the report (it would be host wall-clock in silicon),
    /// not burned in the simulator.
    pub backoff_base_cycles: u64,
    /// Take a checkpoint every this many accelerator cycles during the
    /// first attempt, enabling the resume rung. `None` disables
    /// checkpointing, so transient faults restart from scratch.
    pub checkpoint_interval: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 4,
            backoff_base_cycles: 1_000,
            checkpoint_interval: Some(2_048),
        }
    }
}

/// One rung of the recovery ladder, as recorded in the report trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The initial attempt: the full configured machine.
    Full,
    /// Resume the last pre-failure checkpoint with faults disarmed.
    ResumeCheckpoint,
    /// A rebuilt machine with this many lanes (and matching channels).
    ReducedLanes {
        /// Lane (= channel) count of the degraded machine.
        lanes: usize,
    },
    /// Software Gustavson on the host CPU — the rung of last resort.
    CpuFallback,
}

/// One entry of the recovery trail: what was tried and how it ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryAttempt {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The ladder rung this attempt ran.
    pub action: RecoveryAction,
    /// Backoff charged before this attempt, in simulated cycles.
    pub backoff_cycles: u64,
    /// The fault that ended the attempt, or `None` if it succeeded.
    pub fault: Option<SimError>,
}

/// What [`Driver::launch_with_recovery`] did to finish a run: the full
/// attempt trail, plus summary flags for the common questions (did it
/// degrade? resume? fall back to software?).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Attempts made, including the one that succeeded (1 = clean run).
    pub attempts: u32,
    /// Whether the successful attempt ran a reduced configuration or the
    /// CPU fallback (checkpoint resumes are *not* degraded — they finish
    /// on the full machine).
    pub degraded: bool,
    /// The fault returned by each failed attempt, in order.
    pub faults: Vec<SimError>,
    /// Every attempt in order, each with its rung and outcome.
    pub trail: Vec<RecoveryAttempt>,
    /// Total backoff charged across all retries, in simulated cycles.
    pub backoff_cycles: u64,
    /// Whether the successful attempt resumed from a checkpoint.
    pub resumed_from_checkpoint: bool,
    /// Whether the product was ultimately computed in host software.
    pub used_cpu_fallback: bool,
}

impl<'a> Driver<'a> {
    /// Creates a driver for an accelerator, with registers at their
    /// power-on defaults (the standard region map).
    pub fn new(accel: &'a Accelerator) -> Self {
        Driver { accel, regs: ConfigRegisters::default() }
    }

    /// Executes one `mtx` write.
    pub fn mtx(&mut self, write: MtxWrite) {
        match write {
            MtxWrite::AInfo(v) => self.regs.a_info_ptr = v,
            MtxWrite::AData(v) => self.regs.a_data_ptr = v,
            MtxWrite::BInfo(v) => self.regs.b_info_ptr = v,
            MtxWrite::BData(v) => self.regs.b_data_ptr = v,
            MtxWrite::CInfo(v) => self.regs.c_info_ptr = v,
            MtxWrite::CData(v) => self.regs.c_data_ptr = v,
            MtxWrite::ARows(v) => self.regs.a_rows = v,
            MtxWrite::BRows(v) => self.regs.b_rows = v,
            MtxWrite::X0(v) => self.regs.x0 = v,
        }
    }

    /// Current register contents (host-readable).
    pub fn registers(&self) -> ConfigRegisters {
        self.regs
    }

    /// Launches the configured run, as the hardware would on seeing
    /// `x0 == 1`, and blocks until completion (the host's wait loop).
    ///
    /// # Errors
    ///
    /// [`DriverError::NotStarted`] if `x0` was not set;
    /// [`DriverError::DimensionMismatch`] if the programmed dimension
    /// registers disagree with the actual matrices — the kind of driver
    /// bug this layer exists to catch;
    /// [`DriverError::InvalidInput`] if either matrix fails structural
    /// validation; [`DriverError::AcceleratorFault`] if the accelerator
    /// terminates the run abnormally (deadlock, queue overflow, corrupted
    /// output, ...).
    pub fn launch(&mut self, a: &Csr<f64>, b: &Csr<f64>) -> Result<RunOutcome, DriverError> {
        self.preflight(a, b)?;
        let outcome = self.accel.try_run(a, b).map_err(DriverError::AcceleratorFault)?;
        // Completion: hardware clears the start bit.
        self.regs.x0 = 0;
        Ok(outcome)
    }

    /// [`Driver::launch`] under a hard per-job cycle budget: the run is
    /// cancelled at accelerator cycle `deadline_cycles` if it has not
    /// drained by then, via the checkpoint pause path
    /// ([`Accelerator::try_run_deadline`]). A cancelled job costs exactly
    /// the deadline in simulated cycles — the cancellation hook the
    /// multi-job service layer's admission deadlines rely on. `plan`
    /// optionally arms an injected fault, as in
    /// [`Driver::launch_with_recovery`].
    ///
    /// # Errors
    ///
    /// Everything [`Driver::launch`] reports, plus
    /// [`DriverError::DeadlineExceeded`] when the budget expires first.
    pub fn launch_with_deadline(
        &mut self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        deadline_cycles: u64,
    ) -> Result<RunOutcome, DriverError> {
        self.preflight(a, b)?;
        match self.accel.try_run_deadline(a, b, plan, deadline_cycles) {
            Ok(DeadlineRun::Completed(outcome)) => {
                self.regs.x0 = 0;
                Ok(*outcome)
            }
            // The cancellation checkpoint is dropped here: the driver's
            // contract is cancel-and-report. Callers that want to resume
            // cancelled work use `Accelerator::try_run_deadline` directly.
            Ok(DeadlineRun::Cancelled(_)) => Err(DriverError::DeadlineExceeded { deadline_cycles }),
            Err(e) => Err(DriverError::AcceleratorFault(e)),
        }
    }

    /// Slice-wise driver re-entry ([`Accelerator::try_run_slice`]): runs
    /// one bounded slice of the configured job, starting fresh when `from`
    /// is `None` and resuming the handed-over checkpoint otherwise. The
    /// start bit stays set across paused slices — the job is still in
    /// flight from the host's point of view — and is cleared only when a
    /// slice completes the run, mirroring [`Driver::launch`].
    ///
    /// Each re-entry repeats the full preflight (start bit, dimension
    /// registers, input structure): a fleet re-dispatching a checkpoint to
    /// a different worker re-programs that worker's registers, and this is
    /// where a mis-programmed hand-off is caught.
    ///
    /// # Errors
    ///
    /// Everything [`Driver::launch`] reports; a foreign or incompatible
    /// checkpoint surfaces as [`DriverError::AcceleratorFault`] carrying
    /// [`SimError::CheckpointMismatch`].
    ///
    /// [`SimError::CheckpointMismatch`]: crate::SimError::CheckpointMismatch
    pub fn launch_slice(
        &mut self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        from: Option<&Checkpoint>,
        until_cycle: u64,
    ) -> Result<SliceRun, DriverError> {
        self.preflight(a, b)?;
        match self.accel.try_run_slice(a, b, plan, from, until_cycle) {
            Ok(SliceRun::Completed(outcome)) => {
                self.regs.x0 = 0;
                Ok(SliceRun::Completed(outcome))
            }
            Ok(paused @ SliceRun::Paused(_)) => Ok(paused),
            Err(e) => Err(DriverError::AcceleratorFault(e)),
        }
    }

    /// [`Driver::launch`] with the default [`RecoveryPolicy`]: transient
    /// faults resume from the last checkpoint, persistent faults walk the
    /// degradation ladder down to a host-software fallback.
    ///
    /// `plan` injects a fault into the *first* attempt only (the
    /// transient-fault model); retries run clean hardware.
    ///
    /// # Errors
    ///
    /// Everything [`Driver::launch`] reports; an [`AcceleratorFault`]
    /// means the ladder was exhausted (or the fault was malformed input,
    /// which no rung can outrun), and its payload is the *last* attempt's
    /// fault.
    ///
    /// [`AcceleratorFault`]: DriverError::AcceleratorFault
    pub fn launch_with_recovery(
        &mut self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
    ) -> Result<(RunOutcome, RecoveryReport), DriverError> {
        self.launch_with_policy(a, b, plan, &RecoveryPolicy::default())
    }

    /// [`Driver::launch_with_recovery`] under an explicit policy.
    ///
    /// # Errors
    ///
    /// As [`Driver::launch_with_recovery`].
    pub fn launch_with_policy(
        &mut self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        policy: &RecoveryPolicy,
    ) -> Result<(RunOutcome, RecoveryReport), DriverError> {
        self.preflight(a, b)?;
        let mut report = RecoveryReport {
            attempts: 1,
            degraded: false,
            faults: Vec::new(),
            trail: Vec::new(),
            backoff_cycles: 0,
            resumed_from_checkpoint: false,
            used_cpu_fallback: false,
        };

        // Attempt 1: the full machine, with the injected fault (if any)
        // and periodic checkpoints so a transient failure can resume.
        let every = policy.checkpoint_interval.unwrap_or(0);
        let (first_fault, checkpoint) = match self.accel.try_run_with_checkpoints(a, b, plan, every)
        {
            Ok(outcome) => {
                self.regs.x0 = 0;
                report.trail.push(RecoveryAttempt {
                    attempt: 1,
                    action: RecoveryAction::Full,
                    backoff_cycles: 0,
                    fault: None,
                });
                return Ok((outcome, report));
            }
            Err(FailedRun { error, checkpoint }) => (error, checkpoint),
        };
        report.trail.push(RecoveryAttempt {
            attempt: 1,
            action: RecoveryAction::Full,
            backoff_cycles: 0,
            fault: Some(first_fault.clone()),
        });
        report.faults.push(first_fault.clone());
        // Malformed input fails identically on every configuration; the
        // ladder never retries it.
        if matches!(first_fault, SimError::MalformedInput(_)) {
            return Err(DriverError::AcceleratorFault(first_fault));
        }

        // Build the remaining rungs. A checkpoint resume only makes sense
        // for faults that kill forward progress without corrupting state
        // already checkpointed — deadlocks and budget exhaustion.
        enum Rung {
            Resume(Box<Checkpoint>),
            Lanes(usize),
            Cpu,
        }
        let mut rungs: Vec<Rung> = Vec::new();
        let transient =
            matches!(first_fault, SimError::Deadlock(_) | SimError::CycleBudgetExceeded { .. });
        if transient {
            if let Some(mut ck) = checkpoint {
                ck.disarm_faults();
                rungs.push(Rung::Resume(ck));
            }
        }
        let lanes = self.accel.config().num_lanes;
        if lanes / 2 > 1 {
            rungs.push(Rung::Lanes(lanes / 2));
        }
        if lanes > 1 {
            rungs.push(Rung::Lanes(1));
        }
        rungs.push(Rung::Cpu);

        let mut last_fault = first_fault;
        for rung in rungs {
            if report.attempts >= policy.max_attempts {
                break;
            }
            report.attempts += 1;
            let backoff = policy.backoff_base_cycles << (report.attempts - 2).min(16);
            report.backoff_cycles = report.backoff_cycles.saturating_add(backoff);
            let (action, result) = match rung {
                Rung::Resume(ck) => {
                    (RecoveryAction::ResumeCheckpoint, self.accel.try_run_from(a, b, &ck))
                }
                Rung::Lanes(n) => {
                    let mut cfg = self.accel.config().clone();
                    cfg.num_lanes = n;
                    cfg.mem = HbmConfig { num_channels: n, ..cfg.mem };
                    match Accelerator::try_new(cfg) {
                        // The degraded retry runs *without* the fault
                        // plan — the transient-fault model.
                        Ok(acc) => (RecoveryAction::ReducedLanes { lanes: n }, acc.try_run(a, b)),
                        Err(_) => {
                            // The reduced shape is invalid for this
                            // config family; skip the rung entirely.
                            report.attempts -= 1;
                            report.backoff_cycles = report.backoff_cycles.saturating_sub(backoff);
                            continue;
                        }
                    }
                }
                Rung::Cpu => (RecoveryAction::CpuFallback, Ok(self.cpu_fallback_outcome(a, b))),
            };
            match result {
                Ok(outcome) => {
                    self.regs.x0 = 0;
                    report.degraded = matches!(
                        action,
                        RecoveryAction::ReducedLanes { .. } | RecoveryAction::CpuFallback
                    );
                    report.resumed_from_checkpoint =
                        matches!(action, RecoveryAction::ResumeCheckpoint);
                    report.used_cpu_fallback = matches!(action, RecoveryAction::CpuFallback);
                    report.trail.push(RecoveryAttempt {
                        attempt: report.attempts,
                        action,
                        backoff_cycles: backoff,
                        fault: None,
                    });
                    return Ok((outcome, report));
                }
                Err(e) => {
                    report.trail.push(RecoveryAttempt {
                        attempt: report.attempts,
                        action,
                        backoff_cycles: backoff,
                        fault: Some(e.clone()),
                    });
                    report.faults.push(e.clone());
                    last_fault = e;
                }
            }
        }
        Err(DriverError::AcceleratorFault(last_fault))
    }

    /// The ladder's last rung: the product computed in host software,
    /// with an honest all-zero cycle/traffic account (the accelerator
    /// never ran).
    fn cpu_fallback_outcome(&self, a: &Csr<f64>, b: &Csr<f64>) -> RunOutcome {
        let c = spgemm::gustavson(a, b);
        let c2sr = C2sr::from_csr(&c, 1);
        let multiplies = spgemm::multiply_count(a, b);
        let cfg = self.accel.config();
        RunOutcome {
            c2sr,
            stats: MatRaptorStats {
                total_cycles: 0,
                clock_ghz: cfg.clock_ghz,
                breakdown: CycleBreakdown::default(),
                per_pe_breakdown: Vec::new(),
                multiplies,
                additions: multiplies.saturating_sub(c.nnz() as u64),
                bytes_read: 0,
                bytes_written: 0,
                traffic_read: 0,
                traffic_written: 0,
                per_pe_nnz: vec![a.nnz() as u64],
                overflow_rows: 0,
                overflow_padding_entries: 0,
                phase1_cycles: 0,
                phase2_cycles: 0,
                per_lane_attribution: Vec::new(),
            },
            c,
        }
    }

    /// Shared launch checks: start bit, dimension registers, input
    /// structure.
    fn preflight(&self, a: &Csr<f64>, b: &Csr<f64>) -> Result<(), DriverError> {
        if self.regs.x0 != 1 {
            return Err(DriverError::NotStarted);
        }
        if self.regs.a_rows != a.rows() as u64 {
            return Err(DriverError::DimensionMismatch {
                register: "a_rows",
                programmed: self.regs.a_rows,
                actual: a.rows() as u64,
            });
        }
        if self.regs.b_rows != b.rows() as u64 {
            return Err(DriverError::DimensionMismatch {
                register: "b_rows",
                programmed: self.regs.b_rows,
                actual: b.rows() as u64,
            });
        }
        a.validate().map_err(DriverError::InvalidInput)?;
        b.validate().map_err(DriverError::InvalidInput)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatRaptorConfig;
    use matraptor_sparse::{gen, spgemm};

    #[test]
    fn full_programming_sequence() {
        let a = gen::uniform(24, 24, 120, 2);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(24));
        d.mtx(MtxWrite::BRows(24));
        d.mtx(MtxWrite::X0(1));
        let outcome = d.launch(&a, &a).expect("launch");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
        // Hardware clears x0 on completion; relaunching needs a new start.
        assert_eq!(d.registers().x0, 0);
        assert!(matches!(d.launch(&a, &a), Err(DriverError::NotStarted)));
    }

    #[test]
    fn dimension_mismatch_is_caught() {
        let a = gen::uniform(16, 16, 60, 3);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(99));
        d.mtx(MtxWrite::BRows(16));
        d.mtx(MtxWrite::X0(1));
        assert!(matches!(
            d.launch(&a, &a),
            Err(DriverError::DimensionMismatch { register: "a_rows", .. })
        ));
    }

    #[test]
    fn malformed_input_is_rejected_before_launch() {
        let a = gen::uniform(16, 16, 60, 3);
        let (rows, cols, ptr, idx, mut vals) =
            (a.rows(), a.cols(), a.row_ptr().to_vec(), a.col_idx().to_vec(), a.values().to_vec());
        vals[0] = f64::NAN;
        // Structure is intact, so `from_parts` accepts it; only the
        // value-level `validate` in the driver preflight catches the NaN.
        let bad = Csr::from_parts(rows, cols, ptr, idx, vals).expect("structurally valid");
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(16));
        d.mtx(MtxWrite::BRows(16));
        d.mtx(MtxWrite::X0(1));
        assert!(matches!(d.launch(&bad, &a), Err(DriverError::InvalidInput(_))));
        // The start bit stays set: the accelerator never ran.
        assert_eq!(d.registers().x0, 1);
    }

    #[test]
    fn recovery_resumes_a_transient_stall_from_checkpoint() {
        use crate::fault::{FaultKind, FaultPlan};
        let a = gen::uniform(32, 32, 200, 5);
        let mut cfg = MatRaptorConfig::small_test();
        cfg.watchdog_window = 2_000;
        let accel = Accelerator::new(cfg);
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(32));
        d.mtx(MtxWrite::BRows(32));
        d.mtx(MtxWrite::X0(1));
        let plan = FaultPlan::sample(FaultKind::ChannelStall, 7, accel.config().num_lanes);
        // A short checkpoint interval guarantees a checkpoint exists
        // before the watchdog (window 2000) declares the wedge.
        let policy = RecoveryPolicy { checkpoint_interval: Some(256), ..RecoveryPolicy::default() };
        let (outcome, report) =
            d.launch_with_policy(&a, &a, Some(&plan), &policy).expect("recovered");
        assert_eq!(report.attempts, 2);
        assert!(report.resumed_from_checkpoint);
        assert!(!report.degraded, "a checkpoint resume finishes on the full machine");
        assert!(matches!(report.faults[0], SimError::Deadlock(_)));
        assert_eq!(report.trail.len(), 2);
        assert_eq!(report.trail[1].action, RecoveryAction::ResumeCheckpoint);
        assert_eq!(report.backoff_cycles, policy.backoff_base_cycles);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
        assert_eq!(d.registers().x0, 0);
    }

    #[test]
    fn recovery_retries_a_deadlocked_run_in_single_lane_mode() {
        use crate::fault::{FaultKind, FaultPlan};
        let a = gen::uniform(32, 32, 200, 5);
        let mut cfg = MatRaptorConfig::small_test();
        cfg.watchdog_window = 2_000;
        let accel = Accelerator::new(cfg);
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(32));
        d.mtx(MtxWrite::BRows(32));
        d.mtx(MtxWrite::X0(1));
        let plan = FaultPlan::sample(FaultKind::ChannelStall, 7, accel.config().num_lanes);
        // Checkpointing disabled: the resume rung is unavailable, so the
        // ladder drops to the reduced single-lane machine.
        let policy = RecoveryPolicy { checkpoint_interval: None, ..RecoveryPolicy::default() };
        let (outcome, report) =
            d.launch_with_policy(&a, &a, Some(&plan), &policy).expect("recovered");
        assert_eq!(report.attempts, 2);
        assert!(report.degraded);
        assert!(!report.resumed_from_checkpoint);
        assert!(!report.used_cpu_fallback);
        assert!(matches!(report.faults[0], SimError::Deadlock(_)));
        assert_eq!(report.trail[0].action, RecoveryAction::Full);
        assert!(matches!(report.trail[0].fault, Some(SimError::Deadlock(_))));
        assert_eq!(report.trail[1].action, RecoveryAction::ReducedLanes { lanes: 1 });
        assert_eq!(outcome.stats.per_pe_nnz.len(), 1, "retry ran single-lane");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
        assert_eq!(d.registers().x0, 0);
    }

    #[test]
    fn deadline_launch_cancels_slow_jobs_and_passes_fast_ones() {
        let a = gen::uniform(32, 32, 200, 4);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(32));
        d.mtx(MtxWrite::BRows(32));
        d.mtx(MtxWrite::X0(1));
        // A 100-cycle budget cannot cover the product: cancelled.
        match d.launch_with_deadline(&a, &a, None, 100) {
            Err(DriverError::DeadlineExceeded { deadline_cycles: 100 }) => {}
            other => panic!("expected deadline cancellation, got {other:?}"),
        }
        // The start bit stays set — the job never completed.
        assert_eq!(d.registers().x0, 1);
        // A generous budget lets the same job finish normally.
        let outcome = d.launch_with_deadline(&a, &a, None, u64::MAX).expect("within deadline");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
        assert_eq!(d.registers().x0, 0);
    }

    #[test]
    fn deadline_launch_still_reports_faults_before_the_deadline() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut cfg = MatRaptorConfig::small_test();
        cfg.watchdog_window = 2_000;
        let a = gen::uniform(32, 32, 200, 5);
        let accel = Accelerator::new(cfg);
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(32));
        d.mtx(MtxWrite::BRows(32));
        d.mtx(MtxWrite::X0(1));
        let plan = FaultPlan::sample(FaultKind::ChannelStall, 7, accel.config().num_lanes);
        // Watchdog (2k window) fires long before the generous deadline, so
        // the fault wins and is reported as a fault, not a cancellation.
        match d.launch_with_deadline(&a, &a, Some(&plan), u64::MAX) {
            Err(DriverError::AcceleratorFault(SimError::Deadlock(_))) => {}
            other => panic!("expected deadlock fault, got {other:?}"),
        }
    }

    #[test]
    fn recovery_on_a_clean_run_is_a_single_attempt() {
        let a = gen::uniform(24, 24, 120, 2);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(24));
        d.mtx(MtxWrite::BRows(24));
        d.mtx(MtxWrite::X0(1));
        let (outcome, report) = d.launch_with_recovery(&a, &a, None).expect("clean");
        assert_eq!(
            report,
            RecoveryReport {
                attempts: 1,
                degraded: false,
                faults: vec![],
                trail: vec![RecoveryAttempt {
                    attempt: 1,
                    action: RecoveryAction::Full,
                    backoff_cycles: 0,
                    fault: None,
                }],
                backoff_cycles: 0,
                resumed_from_checkpoint: false,
                used_cpu_fallback: false,
            }
        );
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn malformed_input_is_never_retried() {
        // A 32x40 times 32x32 product is malformed (inner dimensions
        // disagree). If the ladder retried it, the CPU-fallback rung
        // would "succeed" — so getting the fault back proves no rung ran.
        let a = gen::uniform(32, 40, 200, 8);
        let b = gen::uniform(32, 32, 200, 9);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(32));
        d.mtx(MtxWrite::BRows(32));
        d.mtx(MtxWrite::X0(1));
        match d.launch_with_recovery(&a, &b, None) {
            Err(DriverError::AcceleratorFault(SimError::MalformedInput(_))) => {}
            other => panic!("expected un-retried MalformedInput, got {other:?}"),
        }
    }

    #[test]
    fn single_lane_machine_falls_back_to_cpu() {
        use crate::fault::{FaultKind, FaultPlan};
        // On a one-lane machine there is no reduced rung, and a forced
        // queue overflow is not transient — the ladder goes straight to
        // host software.
        let a = gen::uniform(32, 32, 220, 6);
        let mut cfg = MatRaptorConfig::small_test();
        cfg.num_lanes = 1;
        cfg.mem = HbmConfig { num_channels: 1, ..cfg.mem };
        let accel = Accelerator::new(cfg);
        let mut d = Driver::new(&accel);
        d.mtx(MtxWrite::ARows(32));
        d.mtx(MtxWrite::BRows(32));
        d.mtx(MtxWrite::X0(1));
        let plan = FaultPlan::sample(FaultKind::QueueOverflowForce, 11, 1);
        let (outcome, report) = d.launch_with_recovery(&a, &a, Some(&plan)).expect("fell back");
        assert!(report.used_cpu_fallback);
        assert!(report.degraded);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.trail[1].action, RecoveryAction::CpuFallback);
        assert!(matches!(report.faults[0], SimError::QueueOverflow { .. }));
        assert_eq!(outcome.stats.total_cycles, 0, "the accelerator never ran");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn driver_error_display_and_error_trait() {
        let not_started = DriverError::NotStarted;
        assert!(not_started.to_string().contains("x0"));
        let dim = DriverError::DimensionMismatch { register: "a_rows", programmed: 9, actual: 4 };
        let msg = dim.to_string();
        assert!(msg.contains("a_rows") && msg.contains('9') && msg.contains('4'));
        let fault =
            DriverError::AcceleratorFault(SimError::CycleBudgetExceeded { budget: 10, cycles: 11 });
        assert!(fault.to_string().contains("accelerator fault"));
        let invalid = DriverError::InvalidInput(SparseError::NonFiniteValue { row: 0, col: 1 });
        assert!(invalid.to_string().contains("rejected"));
        let late = DriverError::DeadlineExceeded { deadline_cycles: 512 };
        assert!(late.to_string().contains("deadline") && late.to_string().contains("512"));
        // All variants usable as a trait object (the `Box<dyn Error>`
        // plumbing downstream tooling relies on).
        for e in [not_started, dim, fault, invalid, late] {
            let boxed: Box<dyn std::error::Error> = Box::new(e);
            assert!(!boxed.to_string().is_empty());
        }
    }

    #[test]
    fn registers_power_on_to_the_region_map() {
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let d = Driver::new(&accel);
        let r = d.registers();
        assert_eq!(r.a_data_ptr, 0x1000_0000);
        assert_eq!(r.c_data_ptr, 0x5000_0000);
        assert_eq!(r.x0, 0);
    }
}
