//! Per-lane output writer: streams finished C rows to the lane's channel.

use std::collections::{BTreeSet, VecDeque};

use matraptor_sim::trace::{StageBreakdown, StageClass};
use matraptor_sim::watchdog::mix_signature;

use crate::checkpoint::WriterState;
use crate::config::MatRaptorConfig;
use crate::layout::{MatrixLayout, INFO_BYTES};
use crate::port::MemPort;

/// A finished output row held functionally until the run completes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FinishedRow {
    pub row: u32,
    pub cols: Vec<u32>,
    pub vals: Vec<f64>,
    /// Entries of padding left in the C²SR stream because the row
    /// overflowed the sorting queues and was delegated to the CPU
    /// (Section VII's upper-bound gap). Zero for normal rows.
    pub padded_entries: u64,
}

/// The Phase II output path of a lane: buffers merged entries into
/// burst-sized writes and appends them to the lane's own channel — no
/// synchronisation with other lanes, which is the C²SR write-path claim of
/// Section III-B.
#[derive(Debug)]
pub(crate) struct Writer {
    // conformance:allow(checkpoint-coverage): lane identity is structural; the restore path rebuilds the writer in place for the same lane
    lane: usize,
    /// Channel-local byte cursor within the C data region.
    local_cursor: u64,
    /// Entries buffered toward the next burst write.
    buffered_bytes: u32,
    /// Write requests accepted by the buffer but not yet by the HBM.
    queue: VecDeque<(u64, u32)>,
    /// Ids of writes in flight.
    pending: BTreeSet<u64>,
    /// Current row being assembled.
    cur_row: Option<u32>,
    cur_cols: Vec<u32>,
    cur_vals: Vec<f64>,
    /// All completed rows, in completion (= row) order for this lane.
    pub(crate) finished: Vec<FinishedRow>,
    // conformance:allow(checkpoint-coverage): derived from config at construction; restore runs against the fingerprint-checked config
    entry_bytes: u32,
    // conformance:allow(checkpoint-coverage): fixed hardware constant, never mutated after construction
    queue_cap: usize,
    /// Channel-local base of the C data region.
    // conformance:allow(checkpoint-coverage): derived from the matrix layout at construction, identical across a restore of the same job
    data_base_local: u64,
    /// Total entries accepted via `push_entry` (fault bookkeeping).
    entries_pushed: u64,
    /// Fault injection: silently drop the append with this ordinal.
    /// One-shot; cleared after firing.
    pub(crate) fault_drop_append: Option<u64>,
    /// Appends actually dropped by the fault (campaign reporting).
    pub(crate) dropped_appends: u64,
    /// Per-cycle attribution: exactly one bucket is charged per tick.
    attribution: StageBreakdown,
}

impl Writer {
    pub(crate) fn new(lane: usize, cfg: &MatRaptorConfig, data_base_local: u64) -> Self {
        Writer {
            data_base_local,
            lane,
            local_cursor: 0,
            buffered_bytes: 0,
            queue: VecDeque::new(),
            pending: BTreeSet::new(),
            cur_row: None,
            cur_cols: Vec::new(),
            cur_vals: Vec::new(),
            finished: Vec::new(),
            entry_bytes: u32::try_from(cfg.entry_bytes).unwrap_or(u32::MAX),
            queue_cap: 16,
            entries_pushed: 0,
            fault_drop_append: None,
            dropped_appends: 0,
            attribution: StageBreakdown::default(),
        }
    }

    /// Whether Phase II may emit another entry this cycle.
    pub(crate) fn can_accept(&self) -> bool {
        self.queue.len() < self.queue_cap
    }

    /// Accepts one merged `(col, val)` entry for row `row`.
    pub(crate) fn push_entry(&mut self, row: u32, col: u32, val: f64, cfg: &MatRaptorConfig) {
        debug_assert!(self.can_accept());
        let ordinal = self.entries_pushed;
        self.entries_pushed += 1;
        if self.fault_drop_append == Some(ordinal) {
            // Injected silent data loss: the entry vanishes between the
            // adder tree and the write buffer. Detected (if at all) only
            // by the output-integrity cross-check downstream.
            self.fault_drop_append = None;
            self.dropped_appends += 1;
            return;
        }
        if self.cur_row != Some(row) {
            debug_assert!(self.cur_row.is_none(), "previous row not finished");
            self.cur_row = Some(row);
        }
        self.cur_cols.push(col);
        self.cur_vals.push(val);
        self.buffered_bytes = self.buffered_bytes.saturating_add(self.entry_bytes);
        if self.buffered_bytes as u64 >= cfg.mem.interleave_bytes as u64 {
            self.flush_data_burst(cfg);
        }
    }

    /// Completes row `row`: flushes the partial burst and writes the
    /// *(length, pointer)* metadata pair.
    pub(crate) fn finish_row(&mut self, row: u32, cfg: &MatRaptorConfig, layout: &MatrixLayout) {
        debug_assert!(self.cur_row.is_none() || self.cur_row == Some(row));
        if self.buffered_bytes > 0 {
            self.flush_data_burst(cfg);
        }
        self.queue.push_back((layout.info_addr(row as usize), INFO_BYTES));
        self.finished.push(FinishedRow {
            row,
            cols: std::mem::take(&mut self.cur_cols),
            vals: std::mem::take(&mut self.cur_vals),
            padded_entries: 0,
        });
        self.cur_row = None;
    }

    /// Records an overflowed row (Section VII): the accelerator leaves an
    /// upper-bound-sized gap in the output stream and hands the row to the
    /// CPU; `cols`/`vals` carry the CPU-computed content so the run's
    /// functional output stays complete.
    pub(crate) fn record_overflow_row(
        &mut self,
        row: u32,
        cols: Vec<u32>,
        vals: Vec<f64>,
        upper_bound_entries: u64,
    ) {
        debug_assert!(self.cur_row.is_none(), "overflow row with partial write state");
        // The gap is address-space only: the hardware writes nothing here.
        self.local_cursor += upper_bound_entries * self.entry_bytes as u64;
        self.finished.push(FinishedRow { row, cols, vals, padded_entries: upper_bound_entries });
    }

    fn flush_data_burst(&mut self, cfg: &MatRaptorConfig) {
        let addr =
            cfg.mem.channel_local_to_flat(self.lane, self.data_local_base() + self.local_cursor);
        self.queue.push_back((addr, self.buffered_bytes));
        self.local_cursor += self.buffered_bytes as u64;
        self.buffered_bytes = 0;
    }

    /// Channel-local base of the C data region; stored on the layout at
    /// construction time, duplicated here to keep flushes self-contained.
    fn data_local_base(&self) -> u64 {
        self.data_base_local
    }

    /// One accelerator cycle: issue at most one queued write.
    pub(crate) fn tick(&mut self, port: &mut MemPort<'_>) {
        let mut issued = false;
        if let Some(&(addr, bytes)) = self.queue.front() {
            if let Some(id) = port.try_write(addr, bytes) {
                self.pending.insert(id);
                self.queue.pop_front();
                issued = true;
            }
        }
        // A writer with queued-but-refused or in-flight writes is waiting
        // on memory; one merely assembling a row (or drained) has no work
        // of its own and is idle.
        self.attribution.charge(if issued {
            StageClass::Busy
        } else if !self.queue.is_empty() || !self.pending.is_empty() {
            StageClass::MemStall
        } else {
            StageClass::Idle
        });
    }

    /// Per-cycle busy/stall attribution for this unit.
    pub(crate) fn attribution(&self) -> &StageBreakdown {
        &self.attribution
    }

    /// Routes a write acknowledgement. Returns `true` if consumed.
    pub(crate) fn on_response(&mut self, id: u64) -> bool {
        self.pending.remove(&id)
    }

    /// Whether every accepted entry has been written and acknowledged.
    pub(crate) fn is_done(&self) -> bool {
        self.queue.is_empty()
            && self.pending.is_empty()
            && self.buffered_bytes == 0
            && self.cur_row.is_none()
    }

    /// Forward-progress signature for the watchdog.
    pub(crate) fn progress_signature(&self) -> u64 {
        let mut sig = mix_signature(0, self.entries_pushed);
        sig = mix_signature(sig, self.queue.len() as u64);
        sig = mix_signature(sig, self.pending.len() as u64);
        sig = mix_signature(sig, self.buffered_bytes as u64);
        sig = mix_signature(sig, self.finished.len() as u64);
        mix_signature(sig, self.local_cursor)
    }

    /// Occupancy snapshot for deadlock diagnostics: `(queued, pending)`.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        (self.queue.len(), self.pending.len())
    }

    /// Captures all mutable state for a checkpoint. The lane binding and
    /// region base are rebuilt by [`Writer::new`] on restore.
    pub(crate) fn snapshot(&self) -> WriterState {
        WriterState {
            local_cursor: self.local_cursor,
            buffered_bytes: self.buffered_bytes,
            queue: self.queue.iter().copied().collect(),
            pending: self.pending.iter().copied().collect(),
            cur_row: self.cur_row,
            cur_cols: self.cur_cols.clone(),
            cur_vals: self.cur_vals.clone(),
            finished: self.finished.clone(),
            entries_pushed: self.entries_pushed,
            fault_drop_append: self.fault_drop_append,
            dropped_appends: self.dropped_appends,
            attribution: self.attribution.as_array(),
        }
    }

    /// Restores a snapshot into a freshly constructed writer for the same
    /// `(lane, config, layout)` triple.
    pub(crate) fn restore(&mut self, state: &WriterState) {
        self.local_cursor = state.local_cursor;
        self.buffered_bytes = state.buffered_bytes;
        self.queue = state.queue.iter().copied().collect();
        self.pending = state.pending.iter().copied().collect();
        self.cur_row = state.cur_row;
        self.cur_cols = state.cur_cols.clone();
        self.cur_vals = state.cur_vals.clone();
        self.finished = state.finished.clone();
        self.entries_pushed = state.entries_pushed;
        self.fault_drop_append = state.fault_drop_append;
        self.dropped_appends = state.dropped_appends;
        self.attribution = StageBreakdown::from_array(state.attribution);
    }
}
