//! The PE's sorting queues (Section IV-A's merge hardware).

use std::collections::VecDeque;

/// One sorting queue: a FIFO of `(col id, value)` pairs that maintains the
/// invariant that column ids are strictly increasing from front to back.
///
/// Implemented as SRAM in the real design (4 KB each, Table I's dominant
/// area/power component); here a `VecDeque` with the same capacity bound
/// and the same single-push/single-pop per cycle discipline (enforced by
/// the PE, not the queue).
#[derive(Debug, Clone)]
pub(crate) struct SortQueue {
    entries: VecDeque<(u32, f64)>,
    capacity: usize,
}

impl SortQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SortQueue { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends an entry; the caller guarantees sortedness and capacity.
    ///
    /// # Panics
    ///
    /// Panics if the push would break the sorted invariant or exceed
    /// capacity — both indicate PE control bugs, checked eagerly.
    pub(crate) fn push(&mut self, col: u32, val: f64) {
        assert!(self.entries.len() < self.capacity, "sorting queue overflow");
        if let Some(&(back, _)) = self.entries.back() {
            assert!(col > back, "sorting queue push out of order: {col} after {back}");
        }
        self.entries.push_back((col, val));
    }

    pub(crate) fn pop(&mut self) -> Option<(u32, f64)> {
        self.entries.pop_front()
    }

    pub(crate) fn front_col(&self) -> Option<u32> {
        self.entries.front().map(|&(c, _)| c)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Ordered entries front-to-back, for checkpointing.
    pub(crate) fn entries_snapshot(&self) -> Vec<(u32, f64)> {
        self.entries.iter().copied().collect()
    }

    /// Replaces the contents from a checkpoint. The entries came from a
    /// checksummed snapshot of a queue that enforced the sorted/capacity
    /// invariants, so they are re-checked only in debug builds.
    pub(crate) fn restore_entries(&mut self, entries: Vec<(u32, f64)>) {
        debug_assert!(entries.len() <= self.capacity, "restored queue exceeds capacity");
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "restored queue entries out of order"
        );
        self.entries = entries.into();
    }
}

/// How the PE should absorb the next partial-sum vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VectorMode {
    /// An empty primary queue is available: stream the vector straight in
    /// (the "first Q−1 vectors" case).
    Direct {
        /// Index of the receiving queue.
        queue: usize,
    },
    /// All primaries occupied: two-way merge the vector with the
    /// least-occupied primary into the helper queue.
    Merge {
        /// Queue being merged with the incoming vector.
        src: usize,
        /// Helper queue receiving the merged stream.
        helper: usize,
    },
}

/// One of the PE's two queue sets: Q−1 primary queues plus one helper.
#[derive(Debug, Clone)]
pub(crate) struct QueueSet {
    queues: Vec<SortQueue>,
    helper: usize,
    /// Queues filled directly and still counting as "occupied primaries"
    /// even if the vector was empty.
    occupied: Vec<bool>,
}

impl QueueSet {
    pub(crate) fn new(num_queues: usize, capacity: usize) -> Self {
        assert!(num_queues > 2, "need Q > 2 queues");
        QueueSet {
            queues: (0..num_queues).map(|_| SortQueue::new(capacity)).collect(),
            helper: num_queues - 1,
            occupied: vec![false; num_queues],
        }
    }

    /// Decides where the next partial-sum vector goes (Section IV-A's
    /// policy): an empty unoccupied primary if one exists, else merge with
    /// the shortest primary through the helper.
    pub(crate) fn start_vector(&mut self) -> VectorMode {
        let free = (0..self.queues.len())
            .find(|&q| q != self.helper && !self.occupied[q] && self.queues[q].is_empty());
        if let Some(queue) = free {
            self.occupied[queue] = true;
            VectorMode::Direct { queue }
        } else {
            let src = (0..self.queues.len())
                .filter(|&q| q != self.helper)
                .min_by_key(|&q| self.queues[q].len())
                // conformance:allow(panic-safety): invariant: a queue set always has at least one primary queue
                .expect("at least one primary");
            VectorMode::Merge { src, helper: self.helper }
        }
    }

    /// Completes a merge: the drained `src` becomes the new helper and the
    /// filled helper takes `src`'s place as a primary.
    pub(crate) fn finish_merge(&mut self, src: usize, helper: usize) {
        debug_assert!(self.queues[src].is_empty(), "merge source must be drained");
        debug_assert_eq!(helper, self.helper);
        self.occupied[helper] = true;
        self.occupied[src] = false;
        self.helper = src;
    }

    pub(crate) fn queue(&mut self, idx: usize) -> &mut SortQueue {
        &mut self.queues[idx]
    }

    pub(crate) fn queue_ref(&self, idx: usize) -> &SortQueue {
        &self.queues[idx]
    }

    /// Phase II step: pops every queue whose front column equals the
    /// global minimum and returns `(col, sum, queues_popped)` — the
    /// min-column-id selection plus adder tree of Fig. 5b.
    pub(crate) fn pop_min(&mut self) -> Option<(u32, f64, usize)> {
        let min = self.queues.iter().filter_map(SortQueue::front_col).min()?;
        let mut sum = 0.0;
        let mut popped = 0;
        for q in &mut self.queues {
            if q.front_col() == Some(min) {
                // conformance:allow(panic-safety): invariant: the min-scan just proved this queue is non-empty
                let (_, v) = q.pop().expect("front exists");
                sum += v;
                popped += 1;
            }
        }
        Some((min, sum, popped))
    }

    #[allow(dead_code)] // kept for occupancy diagnostics
    pub(crate) fn total_entries(&self) -> usize {
        self.queues.iter().map(SortQueue::len).sum()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queues.iter().all(SortQueue::is_empty)
    }

    /// Resets occupancy tracking for a new output row (queues must already
    /// be drained by Phase II).
    pub(crate) fn reset_for_new_row(&mut self) {
        debug_assert!(self.is_empty(), "reset with residual entries");
        for q in &mut self.queues {
            q.clear();
        }
        for o in &mut self.occupied {
            *o = false;
        }
    }

    /// Captures queues, helper index, and occupancy for a checkpoint.
    pub(crate) fn snapshot(&self) -> crate::checkpoint::QueueSetState {
        crate::checkpoint::QueueSetState {
            queues: self.queues.iter().map(SortQueue::entries_snapshot).collect(),
            helper: self.helper as u64,
            occupied: self.occupied.clone(),
        }
    }

    /// Restores a snapshot taken by [`QueueSet::snapshot`] into a freshly
    /// constructed set of the same shape.
    pub(crate) fn restore(&mut self, state: &crate::checkpoint::QueueSetState) {
        assert_eq!(
            self.queues.len(),
            state.queues.len(),
            "queue set restore: queue count mismatch"
        );
        assert_eq!(
            self.occupied.len(),
            state.occupied.len(),
            "queue set restore: occupancy length mismatch"
        );
        for (q, entries) in self.queues.iter_mut().zip(&state.queues) {
            q.restore_entries(entries.clone());
        }
        self.helper = state.helper as usize;
        self.occupied = state.occupied.clone();
    }

    /// Drops all state (overflow recovery).
    pub(crate) fn hard_clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        for o in &mut self.occupied {
            *o = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_queue_enforces_order_and_capacity() {
        let mut q = SortQueue::new(2);
        q.push(1, 1.0);
        q.push(5, 2.0);
        assert!(q.is_full());
        assert_eq!(q.front_col(), Some(1));
        assert_eq!(q.pop(), Some((1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn unsorted_push_panics() {
        let mut q = SortQueue::new(4);
        q.push(5, 1.0);
        q.push(5, 2.0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overfull_push_panics() {
        let mut q = SortQueue::new(1);
        q.push(1, 1.0);
        q.push(2, 2.0);
    }

    #[test]
    fn first_vectors_go_direct_then_merge() {
        // Q = 4: three primaries, one helper (index 3).
        let mut s = QueueSet::new(4, 16);
        let m1 = s.start_vector();
        assert_eq!(m1, VectorMode::Direct { queue: 0 });
        s.queue(0).push(1, 1.0);
        let m2 = s.start_vector();
        assert_eq!(m2, VectorMode::Direct { queue: 1 });
        // Leave queue 1 empty (empty B row) — still occupied.
        let m3 = s.start_vector();
        assert_eq!(m3, VectorMode::Direct { queue: 2 });
        s.queue(2).push(4, 4.0);
        // Fourth vector must merge with the shortest primary (queue 1).
        match s.start_vector() {
            VectorMode::Merge { src, helper } => {
                assert_eq!(src, 1);
                assert_eq!(helper, 3);
            }
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn merge_rotates_helper() {
        let mut s = QueueSet::new(3, 16);
        s.start_vector(); // direct into 0
        s.queue(0).push(1, 1.0);
        s.start_vector(); // direct into 1
        s.queue(1).push(2, 2.0);
        let (src, helper) = match s.start_vector() {
            VectorMode::Merge { src, helper } => (src, helper),
            m => panic!("unexpected {m:?}"),
        };
        // Simulate the merge: drain src into helper.
        while let Some((c, v)) = s.queue(src).pop() {
            s.queue(helper).push(c, v);
        }
        s.finish_merge(src, helper);
        // New helper is the drained src.
        match s.start_vector() {
            VectorMode::Merge { helper: h2, .. } => assert_eq!(h2, src),
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn pop_min_sums_equal_columns_across_queues() {
        let mut s = QueueSet::new(4, 16);
        s.queue(0).push(3, 1.0);
        s.queue(0).push(7, 9.0);
        s.queue(1).push(3, 2.0);
        s.queue(2).push(5, 4.0);
        let (c, v, n) = s.pop_min().unwrap();
        assert_eq!((c, n), (3, 2));
        assert!((v - 3.0).abs() < 1e-12);
        let (c, v, n) = s.pop_min().unwrap();
        assert_eq!((c, v as i64, n), (5, 4, 1));
        let (c, ..) = s.pop_min().unwrap();
        assert_eq!(c, 7);
        assert!(s.pop_min().is_none());
    }

    #[test]
    fn pop_min_drains_to_empty_and_reset() {
        let mut s = QueueSet::new(3, 4);
        s.queue(0).push(1, 1.0);
        while s.pop_min().is_some() {}
        assert!(s.is_empty());
        s.reset_for_new_row();
        assert_eq!(s.start_vector(), VectorMode::Direct { queue: 0 });
    }
}
