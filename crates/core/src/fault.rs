//! Seeded fault plans for robustness campaigns.
//!
//! A [`FaultPlan`] is a *compiled* description of exactly one injected
//! fault: which kind, which channel or lane, which cycle or token ordinal.
//! All sampling happens here, up front, through the in-tree
//! [`ChaCha8Rng`] — no wall-clock, no ambient entropy — so the same
//! `(kind, seed)` pair always produces the same fault site, the same
//! detection verdict, and the same cycle counts. That determinism is what
//! lets `crates/core/tests/fault_campaign.rs` pin an entire campaign as a
//! regression test and lets CI re-run it with a pinned seed.
//!
//! Layering note: the memory-side effects compile into the plain-data
//! [`MemFaults`] schedule (the `mem` crate cannot depend on the RNG, which
//! lives in `sparse`); stream/queue/writer effects are interpreted by
//! `Accelerator::try_run_with_faults` in this crate.

use matraptor_mem::{FaultWindow, MemFaults};
use matraptor_sparse::rng::ChaCha8Rng;

use crate::accel::RunOutcome;
use crate::error::SimError;

/// The kinds of fault a campaign can inject, each exercising a different
/// detection path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// One HBM channel stops servicing bursts forever: every lane
    /// eventually wedges behind it. Expected detection: the watchdog,
    /// surfacing [`SimError::Deadlock`].
    ChannelStall,
    /// One HBM channel refuses new bursts for a bounded window; requesters
    /// retry until it lifts. Expected outcome: the run *survives* with a
    /// correct result (and a different cycle count).
    BurstRefusal,
    /// One A-stream token silently vanishes at the SpAL → SpBL boundary.
    /// Expected detection: the output-integrity cross-check,
    /// [`SimError::OutputCorrupted`].
    StreamTruncation,
    /// One A-stream token's column id is corrupted to an out-of-range
    /// value. Expected detection: SpBL's bounds check,
    /// [`SimError::MalformedInput`].
    StreamCorruption,
    /// One PE's sorting queues are forced to overflow mid-row with the
    /// CPU-fallback path disabled. Expected detection:
    /// [`SimError::QueueOverflow`].
    QueueOverflowForce,
    /// One writer silently drops an output append. Expected detection:
    /// the output-integrity cross-check, [`SimError::OutputCorrupted`].
    DroppedWrite,
}

impl FaultKind {
    /// Every kind, in campaign sweep order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::ChannelStall,
        FaultKind::BurstRefusal,
        FaultKind::StreamTruncation,
        FaultKind::StreamCorruption,
        FaultKind::QueueOverflowForce,
        FaultKind::DroppedWrite,
    ];

    /// Short stable name for reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ChannelStall => "channel_stall",
            FaultKind::BurstRefusal => "burst_refusal",
            FaultKind::StreamTruncation => "stream_truncation",
            FaultKind::StreamCorruption => "stream_corruption",
            FaultKind::QueueOverflowForce => "queue_overflow",
            FaultKind::DroppedWrite => "dropped_write",
        }
    }
}

/// One fully-sampled fault: the unit a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// The seed this plan was sampled from (recorded for reports).
    pub seed: u64,
    /// Target channel (memory faults) or lane (stream/queue/writer
    /// faults). `Accelerator::try_run_with_faults` remaps a lane with no
    /// assigned work to the busiest one so the fault always engages.
    pub site: usize,
    /// First memory cycle a memory fault is active.
    pub start: u64,
    /// Window length in memory cycles for bounded faults
    /// ([`FaultKind::BurstRefusal`]); ignored by unbounded ones.
    pub duration: u64,
    /// Raw token/entry ordinal for stream, queue, and writer faults; the
    /// accelerator reduces it modulo the lane's actual token count.
    pub ordinal: u64,
}

impl FaultPlan {
    /// Samples the fault site for `kind` from `seed`, targeting a machine
    /// with `num_lanes` lanes (= channels).
    pub fn sample(kind: FaultKind, seed: u64, num_lanes: usize) -> Self {
        // Fold the kind into the stream so e.g. (ChannelStall, 7) and
        // (DroppedWrite, 7) pick unrelated sites.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (kind as u64).wrapping_mul(0x9E37_79B9));
        FaultPlan {
            kind,
            seed,
            site: rng.gen_range(0..num_lanes.max(1)),
            start: rng.gen_range(0u64..2_000),
            duration: rng.gen_range(100u64..1_000),
            ordinal: rng.next_u64(),
        }
    }

    /// The memory-side schedule this plan compiles to (empty for faults
    /// that act above the memory system).
    pub fn mem_faults(&self) -> MemFaults {
        match self.kind {
            FaultKind::ChannelStall => MemFaults {
                stalls: vec![FaultWindow::forever(self.site, self.start)],
                refusals: Vec::new(),
            },
            FaultKind::BurstRefusal => MemFaults {
                stalls: Vec::new(),
                refusals: vec![FaultWindow {
                    channel: self.site,
                    start: self.start,
                    end: self.start + self.duration,
                }],
            },
            _ => MemFaults::none(),
        }
    }
}

/// Campaign verdict for one `(plan, result)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The run completed with a verified-correct result despite the fault
    /// (graceful degradation: retries absorbed it, or the CPU fallback
    /// covered it).
    Survived,
    /// The run terminated with a structured [`SimError`] — the fault was
    /// caught loudly instead of corrupting results or hanging.
    Detected,
    /// The run completed "successfully" even though this fault kind must
    /// either be survived-by-design or detected — a silent escape. CI
    /// fails on any of these.
    Escaped,
}

impl Verdict {
    /// Short stable name for reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Survived => "survived",
            Verdict::Detected => "detected",
            Verdict::Escaped => "escaped",
        }
    }
}

/// Classifies one campaign run. Shared by the `fault_campaign` bench
/// binary and the regression tests so their verdicts cannot drift apart.
///
/// The contract: [`FaultKind::BurstRefusal`] and
/// [`FaultKind::QueueOverflowForce`]-with-fallback are *survivable* —
/// completing with a verified result is the desired outcome. Every other
/// kind corrupts state or wedges the machine, so completing "successfully"
/// means the fault escaped detection.
pub fn classify(kind: FaultKind, result: &Result<RunOutcome, SimError>) -> Verdict {
    match result {
        Err(_) => Verdict::Detected,
        Ok(_) => match kind {
            FaultKind::BurstRefusal => Verdict::Survived,
            // Overflow with the CPU fallback available completes with a
            // correct (verified) result; `try_run_with_faults` only
            // disables the fallback for QueueOverflowForce plans, in which
            // case the run errors and lands in `Detected` above.
            FaultKind::QueueOverflowForce => Verdict::Survived,
            FaultKind::ChannelStall
            | FaultKind::StreamTruncation
            | FaultKind::StreamCorruption
            | FaultKind::DroppedWrite => Verdict::Escaped,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed_and_kind() {
        let a = FaultPlan::sample(FaultKind::ChannelStall, 42, 8);
        let b = FaultPlan::sample(FaultKind::ChannelStall, 42, 8);
        assert_eq!(a, b);
        let c = FaultPlan::sample(FaultKind::ChannelStall, 43, 8);
        assert_ne!(a, c, "different seeds should pick different sites");
        let d = FaultPlan::sample(FaultKind::DroppedWrite, 42, 8);
        assert_ne!((a.site, a.start, a.ordinal), (d.site, d.start, d.ordinal));
    }

    #[test]
    fn sites_stay_in_range() {
        for seed in 0..50 {
            for kind in FaultKind::ALL {
                let p = FaultPlan::sample(kind, seed, 4);
                assert!(p.site < 4);
                assert!(p.start < 2_000);
                assert!((100..1_000).contains(&p.duration));
            }
        }
    }

    #[test]
    fn only_memory_kinds_compile_to_mem_faults() {
        let stall = FaultPlan::sample(FaultKind::ChannelStall, 1, 2).mem_faults();
        assert_eq!(stall.stalls.len(), 1);
        assert_eq!(stall.stalls[0].end, u64::MAX, "stall never lifts");
        let refusal = FaultPlan::sample(FaultKind::BurstRefusal, 1, 2).mem_faults();
        assert_eq!(refusal.refusals.len(), 1);
        assert!(refusal.refusals[0].end > refusal.refusals[0].start);
        for kind in [
            FaultKind::StreamTruncation,
            FaultKind::StreamCorruption,
            FaultKind::QueueOverflowForce,
            FaultKind::DroppedWrite,
        ] {
            assert!(FaultPlan::sample(kind, 1, 2).mem_faults().is_empty());
        }
    }

    #[test]
    fn classification_contract() {
        let err: Result<RunOutcome, SimError> =
            Err(SimError::OutputCorrupted { detail: "test", rows: vec![3] });
        for kind in FaultKind::ALL {
            assert_eq!(classify(kind, &err), Verdict::Detected);
        }
    }
}
