//! Run-level tracing: windowed HBM/channel timelines, per-lane stage
//! attribution timelines, and the Chrome-trace exporter.
//!
//! The primitives (bucket vocabulary, event buffer, metrics registry) live
//! in [`matraptor_sim::trace`]; this module owns the structures that know
//! about accelerator anatomy — channels, lanes, pipeline stages — and the
//! sampler the drive loop feeds while tracing is enabled.
//!
//! Determinism contract: tracing is strictly observational. The sampler is
//! threaded through the drive loop as an `Option` that every untraced
//! entry point passes as `None`, so the traced and untraced machines tick
//! identically; with tracing enabled, all recorded quantities are integer
//! deltas of deterministic counters, so two traced runs of the same inputs
//! are byte-identical (the trace-report CI gate pins this).

use matraptor_mem::ChannelStats;
use matraptor_sim::stats::Histogram;
use matraptor_sim::trace::{fnv1a64, ChromeTrace};

use crate::stats::LaneAttribution;

/// Configuration for a traced run.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Sampling window in accelerator cycles. Each window contributes one
    /// point to every channel and lane timeline. Clamped to ≥ 1.
    pub window: u64,
    /// Bucket boundaries for the per-channel queue-occupancy histograms
    /// (sampled every memory-clock tick).
    pub queue_depth_bounds: Vec<u64>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { window: 1024, queue_depth_bounds: vec![1, 2, 4, 8, 16, 32] }
    }
}

/// One sampling window of one HBM channel: byte and busy-cycle deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelWindow {
    /// First accelerator cycle of the window.
    pub start: u64,
    /// Bytes read from the channel during the window (pin traffic).
    pub read_bytes: u64,
    /// Bytes written to the channel during the window (pin traffic).
    pub write_bytes: u64,
    /// Memory-clock cycles the channel's bus was busy during the window.
    pub busy_cycles: u64,
}

/// The full timeline of one HBM channel across a traced run.
#[derive(Debug, Clone)]
pub struct ChannelTimeline {
    /// Channel index.
    pub channel: usize,
    /// Per-window byte/busy deltas, in time order.
    pub windows: Vec<ChannelWindow>,
    /// Queue-depth distribution, sampled once per memory-clock tick.
    pub queue_depth: Histogram,
}

/// One sampling window of one lane: per-stage attribution deltas in
/// `[busy, mem_stall, queue_stall, idle]` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWindow {
    /// First accelerator cycle of the window.
    pub start: u64,
    /// SpAL bucket deltas.
    pub spal: [u64; 4],
    /// SpBL bucket deltas.
    pub spbl: [u64; 4],
    /// PE bucket deltas.
    pub pe: [u64; 4],
    /// Writer bucket deltas.
    pub writer: [u64; 4],
}

/// The full per-stage timeline of one lane across a traced run.
#[derive(Debug, Clone)]
pub struct LaneTimeline {
    /// Lane index.
    pub lane: usize,
    /// Per-window attribution deltas, in time order.
    pub windows: Vec<LaneWindow>,
}

/// Everything a traced run recorded beyond its [`RunOutcome`] statistics.
///
/// [`RunOutcome`]: crate::RunOutcome
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// The sampling window the timelines were recorded at, in accelerator
    /// cycles.
    pub window: u64,
    /// Total accelerator cycles of the run.
    pub total_cycles: u64,
    /// Accelerator cycles per memory-clock cycle.
    pub clock_ratio: u64,
    /// One timeline per HBM channel.
    pub channels: Vec<ChannelTimeline>,
    /// One timeline per lane.
    pub lanes: Vec<LaneTimeline>,
}

impl RunTrace {
    /// Exports the trace as `chrome://tracing` JSON events.
    ///
    /// Layout: process 1 is the HBM (one thread per channel, one counter
    /// sample per window carrying byte/busy deltas); processes 2+ are the
    /// lanes (one thread per pipeline stage, counter samples carrying the
    /// four attribution buckets); plus one whole-run complete span. All
    /// values are integers, so the bytes are replay-stable.
    pub fn to_chrome_trace(&self) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        const HBM_PID: u64 = 1;
        const LANE_PID_BASE: u64 = 2;
        t.name_process(HBM_PID, "hbm");
        t.complete_with_args(
            "run",
            HBM_PID,
            0,
            0,
            self.total_cycles,
            &[("total_cycles", self.total_cycles), ("window", self.window)],
        );
        for ch in &self.channels {
            let tid = ch.channel as u64 + 1;
            t.name_thread(HBM_PID, tid, &format!("channel{}", ch.channel));
            for w in &ch.windows {
                t.counter(
                    &format!("ch{}.traffic", ch.channel),
                    HBM_PID,
                    tid,
                    w.start,
                    &[
                        ("read_bytes", w.read_bytes),
                        ("write_bytes", w.write_bytes),
                        ("busy_cycles", w.busy_cycles),
                    ],
                );
            }
        }
        for lane in &self.lanes {
            let pid = LANE_PID_BASE + lane.lane as u64;
            t.name_process(pid, &format!("lane{}", lane.lane));
            for (tid, stage) in ["spal", "spbl", "pe", "writer"].iter().enumerate() {
                t.name_thread(pid, tid as u64 + 1, stage);
            }
            for w in &lane.windows {
                for (tid, (stage, buckets)) in
                    [("spal", w.spal), ("spbl", w.spbl), ("pe", w.pe), ("writer", w.writer)]
                        .iter()
                        .enumerate()
                {
                    t.counter(
                        &format!("lane{}.{stage}", lane.lane),
                        pid,
                        tid as u64 + 1,
                        w.start,
                        &[
                            ("busy", buckets[0]),
                            ("mem_stall", buckets[1]),
                            ("queue_stall", buckets[2]),
                            ("idle", buckets[3]),
                        ],
                    );
                }
            }
        }
        t
    }

    /// FNV-1a fingerprint of the exported Chrome-trace bytes — the
    /// replay-gate identity of the trace.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.to_chrome_trace().to_json().as_bytes())
    }
}

/// The drive loop's tracing hook: accumulates windowed deltas of the
/// otherwise-cumulative channel and lane counters.
#[derive(Debug)]
pub(crate) struct TraceSampler {
    window: u64,
    /// Cumulative `[read_bytes, write_bytes, busy_cycles]` per channel at
    /// the last window boundary.
    prev_ch: Vec<[u64; 3]>,
    /// Cumulative per-stage buckets per lane at the last window boundary.
    prev_lane: Vec<[[u64; 4]; 4]>,
    /// First cycle of the currently open window.
    window_start: u64,
    channels: Vec<ChannelTimeline>,
    lanes: Vec<LaneTimeline>,
}

impl TraceSampler {
    pub(crate) fn new(cfg: &TraceConfig, num_channels: usize, num_lanes: usize) -> Self {
        TraceSampler {
            window: cfg.window.max(1),
            prev_ch: vec![[0; 3]; num_channels],
            prev_lane: vec![[[0; 4]; 4]; num_lanes],
            window_start: 0,
            channels: (0..num_channels)
                .map(|channel| ChannelTimeline {
                    channel,
                    windows: Vec::new(),
                    queue_depth: Histogram::new(cfg.queue_depth_bounds.clone()),
                })
                .collect(),
            lanes: (0..num_lanes).map(|lane| LaneTimeline { lane, windows: Vec::new() }).collect(),
        }
    }

    /// The configured (clamped) sampling window.
    pub(crate) fn window(&self) -> u64 {
        self.window
    }

    /// Records one memory-clock tick's queue depths.
    pub(crate) fn record_queue_depths(&mut self, depths: &[usize]) {
        for (ch, &d) in self.channels.iter_mut().zip(depths) {
            ch.queue_depth.record(d as u64);
        }
    }

    /// Closes the window ending at `end` (exclusive): turns the cumulative
    /// channel stats and lane attributions into per-window deltas.
    pub(crate) fn close_window(
        &mut self,
        end: u64,
        ch_stats: &[ChannelStats],
        lane_attrs: &[LaneAttribution],
    ) {
        if end <= self.window_start {
            return; // empty window (e.g. run finished exactly on a boundary)
        }
        for (i, (ch, st)) in self.channels.iter_mut().zip(ch_stats).enumerate() {
            let now = [st.read_bytes.get(), st.write_bytes.get(), st.busy_cycles.get()];
            let prev = &mut self.prev_ch[i];
            ch.windows.push(ChannelWindow {
                start: self.window_start,
                read_bytes: now[0] - prev[0],
                write_bytes: now[1] - prev[1],
                busy_cycles: now[2] - prev[2],
            });
            *prev = now;
        }
        for (i, (lane, attr)) in self.lanes.iter_mut().zip(lane_attrs).enumerate() {
            let now = [
                attr.spal.as_array(),
                attr.spbl.as_array(),
                attr.pe.as_array(),
                attr.writer.as_array(),
            ];
            let prev = &mut self.prev_lane[i];
            let delta =
                |n: [u64; 4], p: [u64; 4]| [n[0] - p[0], n[1] - p[1], n[2] - p[2], n[3] - p[3]];
            lane.windows.push(LaneWindow {
                start: self.window_start,
                spal: delta(now[0], prev[0]),
                spbl: delta(now[1], prev[1]),
                pe: delta(now[2], prev[2]),
                writer: delta(now[3], prev[3]),
            });
            *prev = now;
        }
        self.window_start = end;
    }

    /// Flushes the final (possibly partial) window and assembles the
    /// [`RunTrace`].
    pub(crate) fn finish(
        mut self,
        total_cycles: u64,
        clock_ratio: u64,
        ch_stats: &[ChannelStats],
        lane_attrs: &[LaneAttribution],
    ) -> RunTrace {
        self.close_window(total_cycles, ch_stats, lane_attrs);
        RunTrace {
            window: self.window,
            total_cycles,
            clock_ratio,
            channels: self.channels,
            lanes: self.lanes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matraptor_sim::trace::StageBreakdown;

    fn attrs(busy: u64) -> Vec<LaneAttribution> {
        let mut s = StageBreakdown::default();
        s.busy.add(busy);
        vec![LaneAttribution { spal: s, spbl: s, pe: s, writer: s }]
    }

    #[test]
    fn sampler_turns_cumulative_counters_into_window_deltas() {
        let cfg = TraceConfig { window: 10, queue_depth_bounds: vec![1, 4] };
        let mut sampler = TraceSampler::new(&cfg, 1, 1);
        sampler.record_queue_depths(&[0]);
        sampler.record_queue_depths(&[5]);

        let mut st = ChannelStats::default();
        st.read_bytes.add(100);
        st.busy_cycles.add(7);
        sampler.close_window(10, std::slice::from_ref(&st), &attrs(10));
        st.read_bytes.add(40);
        st.write_bytes.add(64);
        let trace = sampler.finish(15, 1, &[st], &attrs(15));

        assert_eq!(trace.total_cycles, 15);
        let ch = &trace.channels[0];
        assert_eq!(ch.windows.len(), 2);
        assert_eq!(ch.windows[0].read_bytes, 100);
        assert_eq!(ch.windows[0].busy_cycles, 7);
        assert_eq!(
            ch.windows[1],
            ChannelWindow { start: 10, read_bytes: 40, write_bytes: 64, busy_cycles: 0 }
        );
        assert_eq!(ch.queue_depth.total(), 2);
        assert_eq!(ch.queue_depth.max(), 5);
        let lane = &trace.lanes[0];
        assert_eq!(lane.windows[0].spal, [10, 0, 0, 0]);
        assert_eq!(lane.windows[1].spal, [5, 0, 0, 0]);
        // Window deltas reassemble to the cumulative totals.
        let sum: u64 = lane.windows.iter().map(|w| w.spal[0]).sum();
        assert_eq!(sum, 15);
    }

    #[test]
    fn boundary_aligned_finish_adds_no_empty_window() {
        let cfg = TraceConfig { window: 10, queue_depth_bounds: vec![1] };
        let mut sampler = TraceSampler::new(&cfg, 1, 1);
        let st = ChannelStats::default();
        sampler.close_window(10, std::slice::from_ref(&st), &attrs(10));
        let trace = sampler.finish(10, 1, &[st], &attrs(10));
        assert_eq!(trace.channels[0].windows.len(), 1);
        assert_eq!(trace.lanes[0].windows.len(), 1);
    }

    #[test]
    fn chrome_export_is_deterministic_and_structured() {
        let cfg = TraceConfig { window: 8, queue_depth_bounds: vec![1, 2] };
        let build = || {
            let mut sampler = TraceSampler::new(&cfg, 2, 1);
            let mut st = ChannelStats::default();
            st.read_bytes.add(64);
            sampler.record_queue_depths(&[1, 3]);
            sampler.finish(8, 2, &[st, ChannelStats::default()], &attrs(8))
        };
        let trace = build();
        let json = trace.to_chrome_trace().to_json();
        assert_eq!(trace.fingerprint(), build().fingerprint());
        assert!(json.contains("\"name\":\"ch0.traffic\""));
        assert!(json.contains("\"name\":\"lane0.spal\""));
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"read_bytes\":64"));
    }
}
