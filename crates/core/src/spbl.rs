//! Sparse Matrix B Loader (SpBL).

use std::collections::{BTreeMap, VecDeque};

use matraptor_sim::trace::{StageBreakdown, StageClass};
use matraptor_sim::watchdog::mix_signature;
use matraptor_sparse::C2sr;

use crate::checkpoint::{JobState, SpBlState};
use crate::config::MatRaptorConfig;
use crate::layout::{MatrixLayout, INFO_BYTES};
use crate::port::MemPort;
use crate::tokens::{ATok, PeTok};

/// The per-lane loader for matrix B (Section IV-B).
///
/// For every `(a_ik, i, k)` received from SpAL, SpBL fetches the *(row
/// length, row pointer)* pair of B's row *k*, streams that row's data, and
/// forwards one `a_ik · b_kj` product per cycle to the PE, followed by the
/// end-of-vector / end-of-row markers the merge logic keys on.
///
/// Unlike A, matrix B is *shared* between lanes: row *k* lives on channel
/// `k mod lanes`, so SpBL traffic crosses channels and causes the channel
/// conflicts the paper identifies as the residual gap to peak bandwidth
/// (Section VI-B).
#[derive(Debug)]
pub struct SpBl {
    jobs: VecDeque<Job>,
    next_seq: u64,
    pending_info: BTreeMap<u64, u64>,
    pending_data: BTreeMap<u64, DataSpan>,
    staging: VecDeque<PeTok>,
    in_flight: usize,
    // conformance:allow(checkpoint-coverage): fixed hardware constant from config, never mutated after construction
    max_outstanding: usize,
    // conformance:allow(checkpoint-coverage): fixed hardware constant from config, never mutated after construction
    staging_cap: usize,
    // conformance:allow(checkpoint-coverage): fixed hardware constant from config, never mutated after construction
    job_window: usize,
    /// Diagnostic counters: (blocked-on-data, blocked-on-info, staging-full, no-jobs) cycles.
    pub(crate) blocked: [u64; 4],
    /// Set when an incoming A token referenced a B row outside the
    /// matrix — a corrupted stream. `(col, bound)`; the accelerator
    /// polls this and aborts with `SimError::MalformedInput`.
    malformed: Option<(u32, u32)>,
    /// Per-cycle attribution: exactly one bucket is charged per tick.
    attribution: StageBreakdown,
}

#[derive(Debug, Clone, Copy)]
struct DataSpan {
    job_seq: u64,
    count: u32,
}

#[derive(Debug)]
struct Job {
    seq: u64,
    kind: JobKind,
    /// B row to fetch (for `Fetch` jobs).
    b_row: u32,
    a_val: f64,
    out_row: u32,
    last_in_row: bool,
    info_requested: bool,
    info_ready: bool,
    plan: Option<VecDeque<(u64, u32)>>,
    len: u32,
    /// Entries whose data responses have arrived (contiguous prefix —
    /// per-channel ordering guarantees in-order arrival within a job).
    ready_entries: u32,
    /// Entries already turned into product tokens.
    drained_entries: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    /// Fetch B row `b_row` and emit products.
    Fetch,
    /// Pass-through marker for an empty A row.
    EmptyRow,
}

impl SpBl {
    pub(crate) fn new(cfg: &MatRaptorConfig) -> Self {
        SpBl {
            jobs: VecDeque::new(),
            next_seq: 0,
            pending_info: BTreeMap::new(),
            pending_data: BTreeMap::new(),
            staging: VecDeque::new(),
            in_flight: 0,
            max_outstanding: cfg.outstanding_requests,
            staging_cap: 4 * cfg.coupling_fifo_depth,
            job_window: 32,
            blocked: [0; 4],
            malformed: None,
            attribution: StageBreakdown::default(),
        }
    }

    /// Routes a memory response to this unit. Returns `true` if consumed.
    pub(crate) fn on_response(&mut self, id: u64) -> bool {
        if let Some(seq) = self.pending_info.remove(&id) {
            self.in_flight -= 1;
            if let Some(job) = self.job_mut(seq) {
                job.info_ready = true;
            }
            return true;
        }
        if let Some(span) = self.pending_data.remove(&id) {
            self.in_flight -= 1;
            if let Some(job) = self.job_mut(span.job_seq) {
                job.ready_entries += span.count;
            }
            return true;
        }
        false
    }

    fn job_mut(&mut self, seq: u64) -> Option<&mut Job> {
        let front_seq = self.jobs.front()?.seq;
        let idx = (seq - front_seq) as usize;
        self.jobs.get_mut(idx)
    }

    /// One accelerator cycle. `upstream_done` reports whether this lane's
    /// SpAL has fully finished, which disambiguates "idle because the
    /// pipeline is draining" from "queue-stalled on a starved input FIFO"
    /// in the cycle attribution — it gates no behaviour.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tick(
        &mut self,
        port: &mut MemPort<'_>,
        cfg: &MatRaptorConfig,
        layout: &MatrixLayout,
        b: &C2sr<f64>,
        input: &mut VecDeque<ATok>,
        out: &mut VecDeque<PeTok>,
        out_cap: usize,
        upstream_done: bool,
    ) {
        // Attribution bookkeeping only — never gates behaviour.
        let mut moved = false;

        // Forward one token per cycle to the PE.
        if out.len() < out_cap {
            if let Some(tok) = self.staging.pop_front() {
                out.push_back(tok);
                moved = true;
            }
        }

        // Accept new A tokens into the job window.
        while self.jobs.len() < self.job_window {
            let Some(tok) = input.pop_front() else { break };
            // Bounds check at the stream boundary: a corrupted C²SR
            // stream can carry a column id outside B's row space, which
            // would otherwise turn into a wild row-info fetch. Flag it
            // instead of building the job; the accelerator aborts the run.
            if let ATok::Entry { col, .. } = tok {
                if col as usize >= b.rows() {
                    self.malformed = Some((col, b.rows() as u32));
                    break;
                }
            }
            let job = match tok {
                ATok::Entry { val, row, col, last_in_row } => Job {
                    seq: self.next_seq,
                    kind: JobKind::Fetch,
                    b_row: col,
                    a_val: val,
                    out_row: row,
                    last_in_row,
                    info_requested: false,
                    info_ready: false,
                    plan: None,
                    len: 0,
                    ready_entries: 0,
                    drained_entries: 0,
                },
                ATok::EmptyRow { row } => Job {
                    seq: self.next_seq,
                    kind: JobKind::EmptyRow,
                    b_row: 0,
                    a_val: 0.0,
                    out_row: row,
                    last_in_row: true,
                    info_requested: true,
                    info_ready: true,
                    plan: Some(VecDeque::new()),
                    len: 0,
                    ready_entries: 0,
                    drained_entries: 0,
                },
            };
            self.jobs.push_back(job);
            self.next_seq += 1;
            moved = true;
        }

        // Issue info and data requests in job order.
        if self.staging.len() < self.staging_cap {
            for idx in 0..self.jobs.len() {
                if self.in_flight >= self.max_outstanding {
                    break;
                }
                let (seq, kind, b_row, info_requested, info_ready, plan_built) = {
                    let j = &self.jobs[idx];
                    (j.seq, j.kind, j.b_row, j.info_requested, j.info_ready, j.plan.is_some())
                };
                if kind == JobKind::EmptyRow {
                    continue;
                }
                if !info_requested {
                    let addr = layout.info_addr(b_row as usize);
                    if let Some(id) = port.try_read(addr, INFO_BYTES) {
                        self.pending_info.insert(id, seq);
                        self.in_flight += 1;
                        self.jobs[idx].info_requested = true;
                        moved = true;
                    }
                    continue;
                }
                if info_ready && !plan_built {
                    let info = b.row_info(b_row as usize);
                    let channel = b.channel_of(b_row as usize);
                    let plan =
                        layout.row_data_requests(&cfg.mem, channel, info, cfg.read_request_bytes);
                    self.jobs[idx].len = info.len;
                    self.jobs[idx].plan = Some(plan.into());
                }
                if let Some(plan) = self.jobs[idx].plan.as_mut() {
                    while let Some(&(addr, bytes)) = plan.front() {
                        if self.in_flight >= self.max_outstanding {
                            break;
                        }
                        match port.try_read(addr, bytes) {
                            Some(id) => {
                                plan.pop_front();
                                let count = (bytes as u64 / layout.entry_bytes) as u32;
                                self.pending_data.insert(id, DataSpan { job_seq: seq, count });
                                self.in_flight += 1;
                                moved = true;
                            }
                            None => break,
                        }
                    }
                }
            }
        }

        // Drain the front job into staging, in order.
        let mut drained_any = false;
        loop {
            if self.staging.len() >= self.staging_cap {
                if !drained_any {
                    self.blocked[2] += 1;
                }
                break;
            }
            let Some(front) = self.jobs.front() else {
                if !drained_any {
                    self.blocked[3] += 1;
                }
                break;
            };
            match front.kind {
                JobKind::EmptyRow => {
                    self.staging.push_back(PeTok::EndOfRow { row: front.out_row });
                    self.jobs.pop_front();
                    moved = true;
                }
                JobKind::Fetch => {
                    if !front.info_ready || front.plan.is_none() {
                        if !drained_any {
                            self.blocked[1] += 1;
                        }
                        break;
                    }
                    if front.drained_entries < front.ready_entries {
                        let (b_cols, b_vals) = b.row_slices(front.b_row as usize);
                        let e = front.drained_entries as usize;
                        let val = front.a_val * b_vals[e];
                        let col = b_cols[e];
                        self.staging.push_back(PeTok::Product { val, col });
                        // conformance:allow(panic-safety): invariant: a drain step only runs while a job is at the front
                        self.jobs.front_mut().expect("front exists").drained_entries += 1;
                        drained_any = true;
                    } else if front.drained_entries == front.len
                        && front.plan.as_ref().is_some_and(VecDeque::is_empty)
                    {
                        if front.len > 0 {
                            self.staging.push_back(PeTok::EndOfVector);
                        }
                        if front.last_in_row {
                            self.staging.push_back(PeTok::EndOfRow { row: front.out_row });
                        }
                        self.jobs.pop_front();
                        moved = true;
                    } else {
                        if !drained_any {
                            self.blocked[0] += 1;
                        }
                        break; // waiting for data responses
                    }
                }
            }
        }
        moved |= drained_any;

        // Classify the cycle. Movement of any token, request, or job is
        // Busy. A fully drained unit is Idle once SpAL has finished, and
        // queue-stalled (starved input FIFO) while it has not. Otherwise
        // the stall is a queue stall when the only obstruction is a full
        // staging/output FIFO, and a memory stall when the front job is
        // waiting on row info or data responses.
        self.attribution.charge(if moved {
            StageClass::Busy
        } else if self.jobs.is_empty() && self.staging.is_empty() && self.in_flight == 0 {
            if upstream_done {
                StageClass::Idle
            } else {
                StageClass::QueueStall
            }
        } else if (!self.staging.is_empty() && out.len() >= out_cap)
            || self.staging.len() >= self.staging_cap
        {
            StageClass::QueueStall
        } else {
            StageClass::MemStall
        });
    }

    /// Per-cycle busy/stall attribution for this unit.
    pub(crate) fn attribution(&self) -> &StageBreakdown {
        &self.attribution
    }

    #[doc(hidden)]
    pub fn debug_state(&self) -> (usize, usize, usize, bool, bool, u32, u32, u32) {
        let f = self.jobs.front();
        (
            self.in_flight,
            self.jobs.len(),
            self.staging.len(),
            f.map(|j| j.info_ready).unwrap_or(false),
            f.map(|j| j.plan.is_some()).unwrap_or(false),
            f.map(|j| j.len).unwrap_or(0),
            f.map(|j| j.ready_entries).unwrap_or(0),
            f.map(|j| j.drained_entries).unwrap_or(0),
        )
    }

    /// Whether all accepted jobs have been fully forwarded.
    pub(crate) fn is_done(&self) -> bool {
        self.jobs.is_empty() && self.staging.is_empty() && self.in_flight == 0
    }

    /// The malformed-stream flag, if the bounds check tripped.
    pub(crate) fn malformed_input(&self) -> Option<(u32, u32)> {
        self.malformed
    }

    /// Forward-progress signature for the watchdog. Folds job/stage
    /// occupancies and the front job's drain cursors — but *not* the
    /// `blocked` counters, which advance precisely while the unit is
    /// stuck and would mask a deadlock.
    pub(crate) fn progress_signature(&self) -> u64 {
        let mut sig = mix_signature(0, self.next_seq);
        sig = mix_signature(sig, self.jobs.len() as u64);
        sig = mix_signature(sig, self.staging.len() as u64);
        sig = mix_signature(sig, self.in_flight as u64);
        sig = mix_signature(sig, self.pending_info.len() as u64);
        sig = mix_signature(sig, self.pending_data.len() as u64);
        if let Some(f) = self.jobs.front() {
            sig = mix_signature(sig, u64::from(f.info_requested) | u64::from(f.info_ready) << 1);
            sig = mix_signature(sig, f.ready_entries as u64);
            sig = mix_signature(sig, f.drained_entries as u64);
            sig = mix_signature(sig, f.plan.as_ref().map_or(u64::MAX, |p| p.len() as u64));
        }
        sig
    }

    /// Occupancy snapshot for deadlock diagnostics:
    /// `(jobs, in_flight, staging)`.
    pub(crate) fn occupancy(&self) -> (usize, usize, usize) {
        (self.jobs.len(), self.in_flight, self.staging.len())
    }

    /// Captures all mutable state for a checkpoint. Budgets and window
    /// sizes are rebuilt by [`SpBl::new`] on restore.
    pub(crate) fn snapshot(&self) -> SpBlState {
        SpBlState {
            jobs: self
                .jobs
                .iter()
                .map(|j| JobState {
                    seq: j.seq,
                    is_fetch: j.kind == JobKind::Fetch,
                    b_row: j.b_row,
                    a_val: j.a_val,
                    out_row: j.out_row,
                    last_in_row: j.last_in_row,
                    info_requested: j.info_requested,
                    info_ready: j.info_ready,
                    plan: j.plan.as_ref().map(|p| p.iter().copied().collect()),
                    len: j.len,
                    ready_entries: j.ready_entries,
                    drained_entries: j.drained_entries,
                })
                .collect(),
            next_seq: self.next_seq,
            pending_info: self.pending_info.iter().map(|(&id, &seq)| (id, seq)).collect(),
            pending_data: self
                .pending_data
                .iter()
                .map(|(&id, span)| (id, span.job_seq, span.count))
                .collect(),
            staging: self.staging.iter().copied().collect(),
            in_flight: self.in_flight as u64,
            blocked: self.blocked,
            malformed: self.malformed,
            attribution: self.attribution.as_array(),
        }
    }

    /// Restores a snapshot into a freshly constructed loader built from
    /// the same configuration.
    pub(crate) fn restore(&mut self, state: &SpBlState) {
        self.jobs = state
            .jobs
            .iter()
            .map(|j| Job {
                seq: j.seq,
                kind: if j.is_fetch { JobKind::Fetch } else { JobKind::EmptyRow },
                b_row: j.b_row,
                a_val: j.a_val,
                out_row: j.out_row,
                last_in_row: j.last_in_row,
                info_requested: j.info_requested,
                info_ready: j.info_ready,
                plan: j.plan.as_ref().map(|p| p.iter().copied().collect()),
                len: j.len,
                ready_entries: j.ready_entries,
                drained_entries: j.drained_entries,
            })
            .collect();
        self.next_seq = state.next_seq;
        self.pending_info = state.pending_info.iter().copied().collect();
        self.pending_data = state
            .pending_data
            .iter()
            .map(|&(id, job_seq, count)| (id, DataSpan { job_seq, count }))
            .collect();
        self.staging = state.staging.iter().copied().collect();
        self.in_flight = state.in_flight as usize;
        self.blocked = state.blocked;
        self.malformed = state.malformed;
        self.attribution = StageBreakdown::from_array(state.attribution);
    }
}
