//! Accelerator configuration.

use matraptor_mem::HbmConfig;

use crate::error::ConfigError;

/// Parameters of the MatRaptor accelerator.
///
/// Defaults reproduce the evaluated configuration of Section V: a systolic
/// array with **eight rows (lanes)** to match the eight HBM channels, each
/// PE with **ten 4 KB sorting queues**, 64-entry outstanding-request
/// queues, and a 2 GHz accelerator clock over a 1 GHz HBM.
///
/// # Example
///
/// ```rust
/// use matraptor_core::MatRaptorConfig;
///
/// let cfg = MatRaptorConfig::default();
/// assert_eq!(cfg.num_lanes, 8);
/// assert_eq!(cfg.queue_capacity_entries(), 512);
/// assert_eq!(cfg.peak_gops(), 32.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatRaptorConfig {
    /// Rows of the systolic array (SpAL + SpBL + PE per row). The paper
    /// sets this equal to the HBM channel count.
    pub num_lanes: usize,
    /// Sorting queues per PE (the paper's `Q`, must be > 2: Q−1 primaries
    /// plus one helper).
    pub queues_per_pe: usize,
    /// Size of each sorting queue in bytes (SRAM).
    pub queue_bytes: usize,
    /// Bytes per `(value, column id)` entry as stored in memory and in the
    /// queues (4 B value + 4 B column id in the evaluated design).
    pub entry_bytes: usize,
    /// Accelerator clock in GHz (the PEs; HBM has its own clock).
    pub clock_ghz: f64,
    /// Width of SpAL/SpBL streaming reads in bytes (one interleave block,
    /// so each vectorized request stays on one channel).
    pub read_request_bytes: u32,
    /// Depth of the outstanding-request/response queues in SpAL and SpBL.
    pub outstanding_requests: usize,
    /// Depth of the small coupling FIFOs between SpAL→SpBL and SpBL→PE.
    pub coupling_fifo_depth: usize,
    /// Memory configuration.
    pub mem: HbmConfig,
    /// Whether the PE's two queue sets double-buffer Phase I and Phase II
    /// (Fig. 5b). Disabling serialises the phases — the ablation for the
    /// design choice Section IV-B motivates ("Phase II stalls the multiply
    /// operations ... with two sets of queues ... Phase I and Phase II can
    /// be performed in parallel").
    pub double_buffering: bool,
    /// When true, every run cross-checks the accelerator's output against
    /// the software Gustavson reference and panics on mismatch. Cheap
    /// relative to simulation; disable only for very large sweeps.
    pub verify_against_reference: bool,
    /// When true, every run checks the output with the ABFT row-checksum
    /// invariants (`A·(B·1)` against `C·1` per row, plus a seeded
    /// Freivalds probe — see `matraptor_sparse::abft`). Far cheaper than
    /// the full Gustavson reference (`O(nnz)` per check vs a second
    /// SpGEMM), so it stays on even for large sweeps and is the detection
    /// path that turns silent corruption into `SimError::OutputCorrupted`
    /// with the offending row set.
    pub abft_verification: bool,
    /// Forward-progress watchdog window in accelerator cycles: if no
    /// pipeline component moves a token for this many cycles the run
    /// terminates with `SimError::Deadlock` and a per-lane diagnostic.
    /// `0` disables the watchdog (the cycle budget then remains the only
    /// backstop). The default is far above any legitimate stall — the
    /// longest real memory round-trip is tens of cycles — so a fault-free
    /// run can never trip it.
    pub watchdog_window: u64,
}

impl Default for MatRaptorConfig {
    fn default() -> Self {
        MatRaptorConfig {
            num_lanes: 8,
            queues_per_pe: 10,
            queue_bytes: 4096,
            entry_bytes: 8,
            clock_ghz: 2.0,
            read_request_bytes: 64,
            outstanding_requests: 64,
            coupling_fifo_depth: 16,
            mem: HbmConfig::default(),
            double_buffering: true,
            verify_against_reference: true,
            abft_verification: true,
            watchdog_window: 100_000,
        }
    }
}

impl MatRaptorConfig {
    /// A small configuration for unit tests: 2 lanes over 2 channels,
    /// shallow queues so overflow paths are reachable.
    pub fn small_test() -> Self {
        MatRaptorConfig {
            num_lanes: 2,
            queues_per_pe: 4,
            queue_bytes: 512,
            mem: HbmConfig::with_channels(2),
            ..MatRaptorConfig::default()
        }
    }

    /// Entries each sorting queue can hold.
    pub fn queue_capacity_entries(&self) -> usize {
        self.queue_bytes / self.entry_bytes
    }

    /// Peak arithmetic throughput in GOP/s: each lane retires one MAC
    /// (2 ops) per cycle. The paper's 8 lanes × 2 GHz × 2 = 32 GOP/s.
    pub fn peak_gops(&self) -> f64 {
        self.num_lanes as f64 * 2.0 * self.clock_ghz
    }

    /// Ratio of accelerator clock to memory clock, as integer ticks.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not a positive integer (the cycle-driven
    /// coupling assumes the memory ticks every `k`-th accelerator cycle).
    pub fn mem_clock_ratio(&self) -> u64 {
        let ratio = self.clock_ghz / self.mem.clock_ghz;
        let rounded = ratio.round();
        assert!(
            rounded >= 1.0 && (ratio - rounded).abs() < 1e-9,
            "accelerator/memory clock ratio must be a positive integer, got {ratio}"
        );
        rounded as u64
    }

    /// Validates the configuration, reporting the first violated
    /// constraint as a structured [`ConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// The first structural constraint violated (zero lanes, fewer than 3
    /// queues, queue smaller than one entry, lane count not equal to the
    /// channel count — the configuration the paper evaluates and this
    /// model supports, non-integer clock ratio, invalid HBM parameters).
    #[must_use = "the Err explains why this configuration cannot be built"]
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.num_lanes == 0 {
            return Err(ConfigError::NoLanes);
        }
        if self.queues_per_pe <= 2 {
            return Err(ConfigError::TooFewQueues { queues: self.queues_per_pe });
        }
        if self.entry_bytes == 0 {
            return Err(ConfigError::ZeroEntryBytes);
        }
        if self.queue_capacity_entries() == 0 {
            return Err(ConfigError::QueueTooSmall {
                queue_bytes: self.queue_bytes,
                entry_bytes: self.entry_bytes,
            });
        }
        if self.outstanding_requests == 0 {
            return Err(ConfigError::ZeroOutstandingRequests);
        }
        if self.coupling_fifo_depth == 0 {
            return Err(ConfigError::ZeroCouplingFifo);
        }
        if self.num_lanes != self.mem.num_channels {
            return Err(ConfigError::LaneChannelMismatch {
                lanes: self.num_lanes,
                channels: self.mem.num_channels,
            });
        }
        let ratio = self.clock_ghz / self.mem.clock_ghz;
        if !(ratio.round() >= 1.0 && (ratio - ratio.round()).abs() < 1e-9) {
            return Err(ConfigError::NonIntegerClockRatio { ratio });
        }
        self.try_validate_mem()
    }

    /// Mirrors [`HbmConfig::validate`]'s assertions as `Result`s so a bad
    /// memory sub-configuration reports instead of panicking.
    fn try_validate_mem(&self) -> Result<(), ConfigError> {
        let m = &self.mem;
        let detail = if m.num_channels == 0 {
            "need at least one channel"
        } else if m.channel_width_bytes == 0 {
            "zero channel width"
        } else if m.clock_ghz <= 0.0 {
            "zero clock"
        } else if m.burst_bytes == 0 {
            "zero burst"
        } else if m.queue_depth == 0 {
            "zero queue depth"
        } else if m.interleave_bytes < m.burst_bytes {
            "interleave must be at least one burst"
        } else if m.row_bytes < m.burst_bytes as u64 {
            "row smaller than burst"
        } else if m.banks_per_channel == 0 {
            "need at least one bank"
        } else if m.banks_per_channel > 64 {
            "bank bitset supports at most 64 banks"
        } else {
            return Ok(());
        };
        Err(ConfigError::InvalidMemConfig { detail })
    }

    /// Validates the configuration.
    ///
    /// Thin panicking wrapper over [`MatRaptorConfig::try_validate`] for
    /// call sites (tests, examples) that want the fail-fast behaviour.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if any constraint is
    /// violated.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            // conformance:allow(panic-safety): deliberate fail-fast wrapper; fallible callers use try_validate
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = MatRaptorConfig::default();
        cfg.validate();
        assert_eq!(cfg.queues_per_pe, 10);
        assert_eq!(cfg.queue_bytes, 4096);
        assert_eq!(cfg.mem_clock_ratio(), 2);
        assert_eq!(cfg.peak_gops(), 32.0);
    }

    #[test]
    #[should_panic(expected = "binds each lane")]
    fn lane_channel_mismatch_rejected() {
        let cfg = MatRaptorConfig { num_lanes: 4, ..MatRaptorConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "Q > 2")]
    fn too_few_queues_rejected() {
        let cfg = MatRaptorConfig { queues_per_pe: 2, ..MatRaptorConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "clock ratio")]
    fn fractional_clock_ratio_rejected() {
        let cfg = MatRaptorConfig { clock_ghz: 1.5, ..MatRaptorConfig::default() };
        cfg.validate();
    }

    #[test]
    fn small_test_config_is_valid() {
        MatRaptorConfig::small_test().validate();
    }

    #[test]
    fn try_validate_reports_structured_errors() {
        assert_eq!(MatRaptorConfig::default().try_validate(), Ok(()));
        let cfg = MatRaptorConfig { num_lanes: 0, ..MatRaptorConfig::default() };
        assert_eq!(cfg.try_validate(), Err(ConfigError::NoLanes));
        let cfg = MatRaptorConfig { num_lanes: 4, ..MatRaptorConfig::default() };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::LaneChannelMismatch { lanes: 4, channels: 8 })
        );
        let cfg = MatRaptorConfig { queue_bytes: 4, ..MatRaptorConfig::default() };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::QueueTooSmall { queue_bytes: 4, entry_bytes: 8 })
        );
        let cfg = MatRaptorConfig { clock_ghz: 1.5, ..MatRaptorConfig::default() };
        assert!(matches!(cfg.try_validate(), Err(ConfigError::NonIntegerClockRatio { .. })));
    }

    #[test]
    fn bad_mem_subconfig_is_reported_not_panicked() {
        let mut cfg = MatRaptorConfig::small_test();
        cfg.mem.burst_bytes = 0;
        assert_eq!(cfg.try_validate(), Err(ConfigError::InvalidMemConfig { detail: "zero burst" }));
    }

    #[test]
    fn watchdog_window_defaults_on() {
        assert!(MatRaptorConfig::default().watchdog_window > 0);
        assert!(MatRaptorConfig::small_test().watchdog_window > 0);
    }
}
