//! Accelerator configuration.

use matraptor_mem::HbmConfig;

/// Parameters of the MatRaptor accelerator.
///
/// Defaults reproduce the evaluated configuration of Section V: a systolic
/// array with **eight rows (lanes)** to match the eight HBM channels, each
/// PE with **ten 4 KB sorting queues**, 64-entry outstanding-request
/// queues, and a 2 GHz accelerator clock over a 1 GHz HBM.
///
/// # Example
///
/// ```rust
/// use matraptor_core::MatRaptorConfig;
///
/// let cfg = MatRaptorConfig::default();
/// assert_eq!(cfg.num_lanes, 8);
/// assert_eq!(cfg.queue_capacity_entries(), 512);
/// assert_eq!(cfg.peak_gops(), 32.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatRaptorConfig {
    /// Rows of the systolic array (SpAL + SpBL + PE per row). The paper
    /// sets this equal to the HBM channel count.
    pub num_lanes: usize,
    /// Sorting queues per PE (the paper's `Q`, must be > 2: Q−1 primaries
    /// plus one helper).
    pub queues_per_pe: usize,
    /// Size of each sorting queue in bytes (SRAM).
    pub queue_bytes: usize,
    /// Bytes per `(value, column id)` entry as stored in memory and in the
    /// queues (4 B value + 4 B column id in the evaluated design).
    pub entry_bytes: usize,
    /// Accelerator clock in GHz (the PEs; HBM has its own clock).
    pub clock_ghz: f64,
    /// Width of SpAL/SpBL streaming reads in bytes (one interleave block,
    /// so each vectorized request stays on one channel).
    pub read_request_bytes: u32,
    /// Depth of the outstanding-request/response queues in SpAL and SpBL.
    pub outstanding_requests: usize,
    /// Depth of the small coupling FIFOs between SpAL→SpBL and SpBL→PE.
    pub coupling_fifo_depth: usize,
    /// Memory configuration.
    pub mem: HbmConfig,
    /// Whether the PE's two queue sets double-buffer Phase I and Phase II
    /// (Fig. 5b). Disabling serialises the phases — the ablation for the
    /// design choice Section IV-B motivates ("Phase II stalls the multiply
    /// operations ... with two sets of queues ... Phase I and Phase II can
    /// be performed in parallel").
    pub double_buffering: bool,
    /// When true, every run cross-checks the accelerator's output against
    /// the software Gustavson reference and panics on mismatch. Cheap
    /// relative to simulation; disable only for very large sweeps.
    pub verify_against_reference: bool,
}

impl Default for MatRaptorConfig {
    fn default() -> Self {
        MatRaptorConfig {
            num_lanes: 8,
            queues_per_pe: 10,
            queue_bytes: 4096,
            entry_bytes: 8,
            clock_ghz: 2.0,
            read_request_bytes: 64,
            outstanding_requests: 64,
            coupling_fifo_depth: 16,
            mem: HbmConfig::default(),
            double_buffering: true,
            verify_against_reference: true,
        }
    }
}

impl MatRaptorConfig {
    /// A small configuration for unit tests: 2 lanes over 2 channels,
    /// shallow queues so overflow paths are reachable.
    pub fn small_test() -> Self {
        MatRaptorConfig {
            num_lanes: 2,
            queues_per_pe: 4,
            queue_bytes: 512,
            mem: HbmConfig::with_channels(2),
            ..MatRaptorConfig::default()
        }
    }

    /// Entries each sorting queue can hold.
    pub fn queue_capacity_entries(&self) -> usize {
        self.queue_bytes / self.entry_bytes
    }

    /// Peak arithmetic throughput in GOP/s: each lane retires one MAC
    /// (2 ops) per cycle. The paper's 8 lanes × 2 GHz × 2 = 32 GOP/s.
    pub fn peak_gops(&self) -> f64 {
        self.num_lanes as f64 * 2.0 * self.clock_ghz
    }

    /// Ratio of accelerator clock to memory clock, as integer ticks.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not a positive integer (the cycle-driven
    /// coupling assumes the memory ticks every `k`-th accelerator cycle).
    pub fn mem_clock_ratio(&self) -> u64 {
        let ratio = self.clock_ghz / self.mem.clock_ghz;
        let rounded = ratio.round();
        assert!(
            rounded >= 1.0 && (ratio - rounded).abs() < 1e-9,
            "accelerator/memory clock ratio must be a positive integer, got {ratio}"
        );
        rounded as u64
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any structural constraint is violated (zero lanes, fewer
    /// than 3 queues, queue smaller than one entry, lane count not equal
    /// to the channel count — the configuration the paper evaluates and
    /// this model supports).
    pub fn validate(&self) {
        assert!(self.num_lanes > 0, "need at least one lane");
        assert!(self.queues_per_pe > 2, "need Q > 2 sorting queues (Q-1 primaries + helper)");
        assert!(self.queue_capacity_entries() > 0, "queue smaller than one entry");
        assert!(self.entry_bytes > 0, "zero entry size");
        assert!(self.outstanding_requests > 0, "zero outstanding requests");
        assert!(self.coupling_fifo_depth > 0, "zero coupling FIFO depth");
        assert_eq!(
            self.num_lanes, self.mem.num_channels,
            "the evaluated design binds each lane to one HBM channel"
        );
        let _ = self.mem_clock_ratio();
        self.mem.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = MatRaptorConfig::default();
        cfg.validate();
        assert_eq!(cfg.queues_per_pe, 10);
        assert_eq!(cfg.queue_bytes, 4096);
        assert_eq!(cfg.mem_clock_ratio(), 2);
        assert_eq!(cfg.peak_gops(), 32.0);
    }

    #[test]
    #[should_panic(expected = "binds each lane")]
    fn lane_channel_mismatch_rejected() {
        let cfg = MatRaptorConfig { num_lanes: 4, ..MatRaptorConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "Q > 2")]
    fn too_few_queues_rejected() {
        let cfg = MatRaptorConfig { queues_per_pe: 2, ..MatRaptorConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "clock ratio")]
    fn fractional_clock_ratio_rejected() {
        let cfg = MatRaptorConfig { clock_ghz: 1.5, ..MatRaptorConfig::default() };
        cfg.validate();
    }

    #[test]
    fn small_test_config_is_valid() {
        MatRaptorConfig::small_test().validate();
    }
}
