//! Versioned, checksummed machine checkpoints for deterministic replay.
//!
//! A [`Checkpoint`] captures the **entire** mutable state of a run at the
//! top of one accelerator cycle: every lane's SpAL/SpBL/PE/Writer, both
//! coupling FIFOs, the HBM device (queues, banks, in-flight requests,
//! fault windows), the scheduler's id/route bookkeeping, the watchdog's
//! progress state, and any armed fault injector. Everything *not*
//! captured — matrix layouts, lane row assignments, the cycle budget —
//! is recomputed deterministically from `(config, A, B)`, whose
//! fingerprints the checkpoint carries so a resume against the wrong
//! inputs is rejected instead of silently diverging.
//!
//! The serialized format is deliberately `std`-only and plain-data:
//!
//! ```text
//! magic "MRCK" | version u32 LE | checksum u64 LE | payload
//! ```
//!
//! where `checksum` is FNV-1a-64 over the payload and the payload is a
//! fixed-order little-endian field walk (f64 values as raw bit patterns,
//! so replay is bit-exact). The acceptance oracle for all of this is
//! *deterministic replay*: resuming from a checkpoint taken at cycle `k`
//! must produce bit-identical cycle counts and output values to the
//! uninterrupted run (see DESIGN.md §9 and the `checkpoint_replay`
//! integration tests).

use std::fmt;

use matraptor_mem::fault::{FaultCounters, FaultWindow, MemFaults};
use matraptor_mem::snapshot::{
    BankState, ChannelState, ChannelStatsState, FragmentState, HbmState, PendingState,
    ResponseState,
};
use matraptor_mem::MemKind;
use matraptor_sim::trace::fnv1a64;
use matraptor_sim::watchdog::mix_signature;
use matraptor_sparse::Csr;

use crate::config::MatRaptorConfig;
use crate::queue::VectorMode;
use crate::tokens::{ATok, PeTok};
use crate::writer::FinishedRow;

/// Current checkpoint format version. Bumped on any change to the
/// serialized field walk; [`Checkpoint::from_bytes`] rejects other
/// versions rather than guessing. Version 2 added the per-stage
/// `[busy, mem_stall, queue_stall, idle]` attribution arrays to the
/// SpAL/SpBL/Writer unit states.
pub const CHECKPOINT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"MRCK";

/// Why a serialized checkpoint was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The byte stream ended before the field walk did.
    Truncated,
    /// The stream does not start with the checkpoint magic.
    BadMagic,
    /// The stream's format version is not [`CHECKPOINT_VERSION`].
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The bytes decoded but violated a structural invariant (an invalid
    /// enum tag, an implausible length).
    Malformed,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (expected {CHECKPOINT_VERSION})")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Malformed => write!(f, "checkpoint payload malformed"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A resumable machine state. Opaque: produced by
/// [`crate::Accelerator::try_run_to_checkpoint`] (or the checkpointing
/// run loop) and consumed by [`crate::Accelerator::try_run_from`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub(crate) state: CheckpointState,
}

impl Checkpoint {
    /// The accelerator cycle at which this checkpoint was taken. Resuming
    /// re-executes this cycle first.
    pub fn cycle(&self) -> u64 {
        self.state.t
    }

    /// The format version this checkpoint serializes as.
    pub fn version(&self) -> u32 {
        CHECKPOINT_VERSION
    }

    /// Clears every armed fault from the captured state: HBM stall and
    /// refusal windows, the stream injector, and the one-shot PE/Writer
    /// injection hooks (re-enabling the CPU overflow fallback).
    ///
    /// This models "the transient fault has passed" and is what the
    /// recovery ladder's resume rung applies before re-running: a wedge
    /// caused by a stalled channel unwedges because the restored channel
    /// resumes servicing its queued fragments. Effects that already
    /// landed *before* the checkpoint (a dropped write, corrupted
    /// tokens) are part of the captured state and are still caught by
    /// the output checks at the end of the resumed run.
    pub fn disarm_faults(&mut self) {
        self.state.hbm.faults = MemFaults::none();
        self.state.stream_fault = None;
        for lane in &mut self.state.lanes {
            lane.pe.fault_force_overflow_after = None;
            lane.pe.cpu_fallback = true;
            lane.writer.fault_drop_append = None;
        }
    }

    /// Serializes to the versioned, checksummed byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.state.enc(&mut payload);
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a checkpoint produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`] /
    /// [`CheckpointError::UnsupportedVersion`] for foreign bytes,
    /// [`CheckpointError::ChecksumMismatch`] for bit rot, and
    /// [`CheckpointError::Truncated`] / [`CheckpointError::Malformed`]
    /// for structurally broken payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < 16 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[8..16]);
        let checksum = u64::from_le_bytes(sum);
        let payload = &bytes[16..];
        if fnv1a64(payload) != checksum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut r = Reader { buf: payload, pos: 0 };
        let state = CheckpointState::dec(&mut r)?;
        if r.pos != payload.len() {
            return Err(CheckpointError::Malformed);
        }
        Ok(Checkpoint { state })
    }
}

/// Fingerprint of a configuration: every field that affects the machine's
/// cycle-level behaviour, folded with the watchdog's signature mixer.
pub(crate) fn fingerprint_config(cfg: &MatRaptorConfig) -> u64 {
    let mut s = mix_signature(0, cfg.num_lanes as u64);
    s = mix_signature(s, cfg.queues_per_pe as u64);
    s = mix_signature(s, cfg.queue_bytes as u64);
    s = mix_signature(s, cfg.entry_bytes as u64);
    s = mix_signature(s, cfg.clock_ghz.to_bits());
    s = mix_signature(s, cfg.read_request_bytes as u64);
    s = mix_signature(s, cfg.outstanding_requests as u64);
    s = mix_signature(s, cfg.coupling_fifo_depth as u64);
    s = mix_signature(s, u64::from(cfg.double_buffering));
    s = mix_signature(s, u64::from(cfg.verify_against_reference));
    s = mix_signature(s, u64::from(cfg.abft_verification));
    s = mix_signature(s, cfg.watchdog_window);
    let m = &cfg.mem;
    s = mix_signature(s, m.num_channels as u64);
    s = mix_signature(s, m.channel_width_bytes as u64);
    s = mix_signature(s, m.clock_ghz.to_bits());
    s = mix_signature(s, m.burst_bytes as u64);
    s = mix_signature(s, m.interleave_bytes as u64);
    s = mix_signature(s, m.access_latency);
    s = mix_signature(s, m.queue_depth as u64);
    s = mix_signature(s, m.row_bytes);
    s = mix_signature(s, m.row_miss_penalty);
    s = mix_signature(s, m.banks_per_channel as u64);
    mix_signature(s, m.bank_lookahead as u64)
}

/// Stable fingerprint of an operand pair `(A, B)` — the input identity the
/// service layer's poison-job quarantine keys on. Built from the same
/// per-matrix fingerprints the checkpoint resume path uses, so two
/// submissions collide exactly when a checkpoint taken under one would
/// resume under the other: same shapes, same structure, same value bits.
pub fn fingerprint_inputs(a: &Csr<f64>, b: &Csr<f64>) -> u64 {
    mix_signature(fingerprint_matrix(a), fingerprint_matrix(b))
}

/// Fingerprint of an operand matrix: shape plus every structural index
/// and raw value bit, so a resume against even a one-ulp-different
/// operand is rejected.
pub(crate) fn fingerprint_matrix(m: &Csr<f64>) -> u64 {
    let mut s = mix_signature(0, m.rows() as u64);
    s = mix_signature(s, m.cols() as u64);
    s = mix_signature(s, m.nnz() as u64);
    for &p in m.row_ptr() {
        s = mix_signature(s, p as u64);
    }
    for &c in m.col_idx() {
        s = mix_signature(s, c as u64);
    }
    for &v in m.values() {
        s = mix_signature(s, v.to_bits());
    }
    s
}

// ---------------------------------------------------------------------------
// Plain-data state structs (one per stateful unit). Fields mirror the
// units' *mutable* state exactly; constants rebuilt by the unit
// constructors (lane indices, row assignments, capacities) are absent.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpAlSpanState {
    pub(crate) row_pos: u64,
    pub(crate) first_entry: u32,
    pub(crate) count: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpAlState {
    pub(crate) info_cursor: u64,
    pub(crate) data_cursor: u64,
    pub(crate) info_ready: Vec<bool>,
    pub(crate) current_plan: Vec<(u64, u32)>,
    pub(crate) entries_issued: u32,
    pub(crate) pending_info: Vec<(u64, u64)>,
    pub(crate) pending_data: Vec<(u64, SpAlSpanState)>,
    pub(crate) staging: Vec<ATok>,
    pub(crate) in_flight: u64,
    /// `[busy, mem_stall, queue_stall, idle]` cycle attribution.
    pub(crate) attribution: [u64; 4],
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JobState {
    pub(crate) seq: u64,
    pub(crate) is_fetch: bool,
    pub(crate) b_row: u32,
    pub(crate) a_val: f64,
    pub(crate) out_row: u32,
    pub(crate) last_in_row: bool,
    pub(crate) info_requested: bool,
    pub(crate) info_ready: bool,
    pub(crate) plan: Option<Vec<(u64, u32)>>,
    pub(crate) len: u32,
    pub(crate) ready_entries: u32,
    pub(crate) drained_entries: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpBlState {
    pub(crate) jobs: Vec<JobState>,
    pub(crate) next_seq: u64,
    pub(crate) pending_info: Vec<(u64, u64)>,
    pub(crate) pending_data: Vec<(u64, u64, u32)>,
    pub(crate) staging: Vec<PeTok>,
    pub(crate) in_flight: u64,
    pub(crate) blocked: [u64; 4],
    pub(crate) malformed: Option<(u32, u32)>,
    /// `[busy, mem_stall, queue_stall, idle]` cycle attribution.
    pub(crate) attribution: [u64; 4],
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueueSetState {
    pub(crate) queues: Vec<Vec<(u32, f64)>>,
    pub(crate) helper: u64,
    pub(crate) occupied: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BreakdownState {
    pub(crate) busy: u64,
    pub(crate) merge_stall: u64,
    pub(crate) memory_stall: u64,
    pub(crate) idle: u64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PeState {
    pub(crate) set0: QueueSetState,
    pub(crate) set1: QueueSetState,
    pub(crate) fill: u64,
    pub(crate) vec_mode: Option<VectorMode>,
    pub(crate) phase2: Option<(u64, u32)>,
    pub(crate) skipping: bool,
    pub(crate) products_in_row: u64,
    pub(crate) breakdown: BreakdownState,
    pub(crate) multiplies: u64,
    pub(crate) additions: u64,
    pub(crate) overflow_rows: Vec<u32>,
    pub(crate) phase1_cycles: u64,
    pub(crate) phase2_cycles: u64,
    pub(crate) fault_force_overflow_after: Option<u64>,
    pub(crate) cpu_fallback: bool,
    pub(crate) fatal_overflow: Option<u32>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WriterState {
    pub(crate) local_cursor: u64,
    pub(crate) buffered_bytes: u32,
    pub(crate) queue: Vec<(u64, u32)>,
    pub(crate) pending: Vec<u64>,
    pub(crate) cur_row: Option<u32>,
    pub(crate) cur_cols: Vec<u32>,
    pub(crate) cur_vals: Vec<f64>,
    pub(crate) finished: Vec<FinishedRow>,
    pub(crate) entries_pushed: u64,
    pub(crate) fault_drop_append: Option<u64>,
    pub(crate) dropped_appends: u64,
    /// `[busy, mem_stall, queue_stall, idle]` cycle attribution.
    pub(crate) attribution: [u64; 4],
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LaneState {
    pub(crate) spal: SpAlState,
    pub(crate) spbl: SpBlState,
    pub(crate) pe: PeState,
    pub(crate) writer: WriterState,
    pub(crate) spal_out: Vec<ATok>,
    pub(crate) pe_in: Vec<PeTok>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StreamFaultState {
    pub(crate) lane: u64,
    pub(crate) target: u64,
    pub(crate) seen: u64,
    pub(crate) truncate: bool,
    pub(crate) corrupt_to: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WdSourceState {
    pub(crate) last_signature: u64,
    pub(crate) last_progress: u64,
    pub(crate) observed: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointState {
    pub(crate) cfg_fingerprint: u64,
    pub(crate) a_fingerprint: u64,
    pub(crate) b_fingerprint: u64,
    /// Accelerator cycle at the top of which this state was captured.
    pub(crate) t: u64,
    pub(crate) next_id: u64,
    /// `(request id, lane)` routing entries, sorted by id.
    pub(crate) route: Vec<(u64, u64)>,
    pub(crate) lanes: Vec<LaneState>,
    pub(crate) stream_fault: Option<StreamFaultState>,
    pub(crate) hbm: HbmState,
    pub(crate) wd_last_progress: u64,
    pub(crate) wd_sources: Vec<WdSourceState>,
}

// ---------------------------------------------------------------------------
// Serialization: a fixed-order little-endian field walk.
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

trait Enc {
    fn enc(&self, out: &mut Vec<u8>);
}

trait Dec: Sized {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError>;
}

impl Enc for u8 {
    fn enc(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}
impl Dec for u8 {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(r.take(1)?[0])
    }
}

impl Enc for u32 {
    fn enc(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Dec for u32 {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(r.take(4)?);
        Ok(u32::from_le_bytes(b))
    }
}

impl Enc for u64 {
    fn enc(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Dec for u64 {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(r.take(8)?);
        Ok(u64::from_le_bytes(b))
    }
}

impl Enc for usize {
    fn enc(&self, out: &mut Vec<u8>) {
        (*self as u64).enc(out);
    }
}
impl Dec for usize {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        usize::try_from(u64::dec(r)?).map_err(|_| CheckpointError::Malformed)
    }
}

impl Enc for bool {
    fn enc(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}
impl Dec for bool {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::dec(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed),
        }
    }
}

impl Enc for f64 {
    fn enc(&self, out: &mut Vec<u8>) {
        self.to_bits().enc(out);
    }
}
impl Dec for f64 {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(f64::from_bits(u64::dec(r)?))
    }
}

impl<T: Enc> Enc for Option<T> {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.enc(out);
            }
        }
    }
}
impl<T: Dec> Dec for Option<T> {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::dec(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(r)?)),
            _ => Err(CheckpointError::Malformed),
        }
    }
}

impl<T: Enc> Enc for Vec<T> {
    fn enc(&self, out: &mut Vec<u8>) {
        (self.len() as u64).enc(out);
        for item in self {
            item.enc(out);
        }
    }
}
impl<T: Dec> Dec for Vec<T> {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::dec(r)?;
        // Every element encodes to at least one byte, so a length beyond
        // the remaining payload is structurally impossible — reject it
        // before allocating.
        if len > r.remaining() {
            return Err(CheckpointError::Malformed);
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::dec(r)?);
        }
        Ok(v)
    }
}

impl<A: Enc, B: Enc> Enc for (A, B) {
    fn enc(&self, out: &mut Vec<u8>) {
        self.0.enc(out);
        self.1.enc(out);
    }
}
impl<A: Dec, B: Dec> Dec for (A, B) {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::dec(r)?, B::dec(r)?))
    }
}

impl<A: Enc, B: Enc, C: Enc> Enc for (A, B, C) {
    fn enc(&self, out: &mut Vec<u8>) {
        self.0.enc(out);
        self.1.enc(out);
        self.2.enc(out);
    }
}
impl<A: Dec, B: Dec, C: Dec> Dec for (A, B, C) {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::dec(r)?, B::dec(r)?, C::dec(r)?))
    }
}

impl Enc for [u64; 4] {
    fn enc(&self, out: &mut Vec<u8>) {
        for v in self {
            v.enc(out);
        }
    }
}
impl Dec for [u64; 4] {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok([u64::dec(r)?, u64::dec(r)?, u64::dec(r)?, u64::dec(r)?])
    }
}

impl Enc for MemKind {
    fn enc(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MemKind::Read => 0,
            MemKind::Write => 1,
        });
    }
}
impl Dec for MemKind {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::dec(r)? {
            0 => Ok(MemKind::Read),
            1 => Ok(MemKind::Write),
            _ => Err(CheckpointError::Malformed),
        }
    }
}

impl Enc for ATok {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ATok::Entry { val, row, col, last_in_row } => {
                out.push(0);
                val.enc(out);
                row.enc(out);
                col.enc(out);
                last_in_row.enc(out);
            }
            ATok::EmptyRow { row } => {
                out.push(1);
                row.enc(out);
            }
        }
    }
}
impl Dec for ATok {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::dec(r)? {
            0 => Ok(ATok::Entry {
                val: f64::dec(r)?,
                row: u32::dec(r)?,
                col: u32::dec(r)?,
                last_in_row: bool::dec(r)?,
            }),
            1 => Ok(ATok::EmptyRow { row: u32::dec(r)? }),
            _ => Err(CheckpointError::Malformed),
        }
    }
}

impl Enc for PeTok {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            PeTok::Product { val, col } => {
                out.push(0);
                val.enc(out);
                col.enc(out);
            }
            PeTok::EndOfVector => out.push(1),
            PeTok::EndOfRow { row } => {
                out.push(2);
                row.enc(out);
            }
        }
    }
}
impl Dec for PeTok {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::dec(r)? {
            0 => Ok(PeTok::Product { val: f64::dec(r)?, col: u32::dec(r)? }),
            1 => Ok(PeTok::EndOfVector),
            2 => Ok(PeTok::EndOfRow { row: u32::dec(r)? }),
            _ => Err(CheckpointError::Malformed),
        }
    }
}

impl Enc for VectorMode {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            VectorMode::Direct { queue } => {
                out.push(0);
                queue.enc(out);
            }
            VectorMode::Merge { src, helper } => {
                out.push(1);
                src.enc(out);
                helper.enc(out);
            }
        }
    }
}
impl Dec for VectorMode {
    fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::dec(r)? {
            0 => Ok(VectorMode::Direct { queue: usize::dec(r)? }),
            1 => Ok(VectorMode::Merge { src: usize::dec(r)?, helper: usize::dec(r)? }),
            _ => Err(CheckpointError::Malformed),
        }
    }
}

/// Implements the byte walk for a plain struct as the fields in order.
macro_rules! plain_struct {
    ($name:ident { $($f:ident),* $(,)? }) => {
        impl Enc for $name {
            fn enc(&self, out: &mut Vec<u8>) {
                $(self.$f.enc(out);)*
            }
        }
        impl Dec for $name {
            fn dec(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
                Ok($name { $($f: Dec::dec(r)?),* })
            }
        }
    };
}

plain_struct!(FaultWindow { channel, start, end });
plain_struct!(MemFaults { stalls, refusals });
plain_struct!(FaultCounters { stalled_cycles, refused_submits });
plain_struct!(FragmentState { req_id, kind, addr, bytes });
plain_struct!(BankState { open_row, prep_row, ready_at });
plain_struct!(ChannelStatsState {
    busy_cycles,
    read_bytes,
    write_bytes,
    bursts,
    read_bursts,
    write_bursts,
    row_misses,
});
plain_struct!(ChannelState { queue, queue_pushed, in_service, banks, stats });
plain_struct!(PendingState { id, kind, bytes, fragments_left, submitted });
plain_struct!(ResponseState { ready_at, id, kind, bytes });
plain_struct!(HbmState {
    channels,
    pending,
    responses,
    completed_requests,
    latency_sum,
    faults,
    fault_counters,
});
plain_struct!(FinishedRow { row, cols, vals, padded_entries });
plain_struct!(SpAlSpanState { row_pos, first_entry, count });
plain_struct!(SpAlState {
    info_cursor,
    data_cursor,
    info_ready,
    current_plan,
    entries_issued,
    pending_info,
    pending_data,
    staging,
    in_flight,
    attribution,
});
plain_struct!(JobState {
    seq,
    is_fetch,
    b_row,
    a_val,
    out_row,
    last_in_row,
    info_requested,
    info_ready,
    plan,
    len,
    ready_entries,
    drained_entries,
});
plain_struct!(SpBlState {
    jobs,
    next_seq,
    pending_info,
    pending_data,
    staging,
    in_flight,
    blocked,
    malformed,
    attribution,
});
plain_struct!(QueueSetState { queues, helper, occupied });
plain_struct!(BreakdownState { busy, merge_stall, memory_stall, idle });
plain_struct!(PeState {
    set0,
    set1,
    fill,
    vec_mode,
    phase2,
    skipping,
    products_in_row,
    breakdown,
    multiplies,
    additions,
    overflow_rows,
    phase1_cycles,
    phase2_cycles,
    fault_force_overflow_after,
    cpu_fallback,
    fatal_overflow,
});
plain_struct!(WriterState {
    local_cursor,
    buffered_bytes,
    queue,
    pending,
    cur_row,
    cur_cols,
    cur_vals,
    finished,
    entries_pushed,
    fault_drop_append,
    dropped_appends,
    attribution,
});
plain_struct!(LaneState { spal, spbl, pe, writer, spal_out, pe_in });
plain_struct!(StreamFaultState { lane, target, seen, truncate, corrupt_to });
plain_struct!(WdSourceState { last_signature, last_progress, observed });
plain_struct!(CheckpointState {
    cfg_fingerprint,
    a_fingerprint,
    b_fingerprint,
    t,
    next_id,
    route,
    lanes,
    stream_fault,
    hbm,
    wd_last_progress,
    wd_sources,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> CheckpointState {
        CheckpointState {
            cfg_fingerprint: 1,
            a_fingerprint: 2,
            b_fingerprint: 3,
            t: 42,
            next_id: 7,
            route: vec![(5, 0), (6, 1)],
            lanes: vec![],
            stream_fault: Some(StreamFaultState {
                lane: 1,
                target: 9,
                seen: 4,
                truncate: false,
                corrupt_to: 77,
            }),
            hbm: HbmState {
                channels: vec![],
                pending: vec![],
                responses: vec![],
                completed_requests: 11,
                latency_sum: 220,
                faults: MemFaults::none(),
                fault_counters: FaultCounters::default(),
            },
            wd_last_progress: 40,
            wd_sources: vec![WdSourceState {
                last_signature: 8,
                last_progress: 40,
                observed: true,
            }],
        }
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let ck = Checkpoint { state: tiny_state() };
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.state, ck.state);
        assert_eq!(back.cycle(), 42);
    }

    #[test]
    fn checksum_is_the_shared_workspace_fnv1a64() {
        // The checkpoint checksum and the trace/report fingerprints must be
        // the same hash: the header's u64 at bytes [8..16] is exactly
        // `matraptor_sim::trace::fnv1a64` over the payload.
        let bytes = Checkpoint { state: tiny_state() }.to_bytes();
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[8..16]);
        assert_eq!(u64::from_le_bytes(sum), matraptor_sim::trace::fnv1a64(&bytes[16..]));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Checkpoint { state: tiny_state() }.to_bytes();
        bytes[0] = b'X';
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::BadMagic) => {}
            other => panic!("expected bad-magic error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Checkpoint { state: tiny_state() }.to_bytes();
        bytes[4] = 99;
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::UnsupportedVersion { found: 99 }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = Checkpoint { state: tiny_state() }.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::ChecksumMismatch) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let bytes = Checkpoint { state: tiny_state() }.to_bytes();
        match Checkpoint::from_bytes(&bytes[..10]) {
            Err(CheckpointError::Truncated) => {}
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn disarm_clears_fault_state() {
        let mut ck = Checkpoint { state: tiny_state() };
        ck.state.hbm.faults.stalls.push(FaultWindow::forever(0, 10));
        ck.disarm_faults();
        assert!(ck.state.hbm.faults.is_empty());
        assert!(ck.state.stream_fault.is_none());
    }
}
