//! The top-level accelerator: lanes over a shared HBM.

use std::collections::{BTreeMap, VecDeque};

use matraptor_mem::Hbm;
use matraptor_sim::stats::CycleBreakdown;
use matraptor_sim::watchdog::mix_signature;
use matraptor_sim::{Cycle, Watchdog, WatchdogReport};
use matraptor_sparse::{spgemm, C2sr, Csr};

use crate::config::MatRaptorConfig;
use crate::error::{
    ChannelDiagnostic, ConfigError, DeadlockDiagnostic, LaneDiagnostic, MalformedInput, SimError,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::layout::{matrix_layout, Regions};
use crate::pe::Pe;
use crate::port::MemPort;
use crate::spal::SpAl;
use crate::spbl::SpBl;
use crate::stats::MatRaptorStats;
use crate::tokens::{ATok, PeTok};
use crate::writer::Writer;

/// The MatRaptor accelerator (Fig. 5a): `num_lanes` rows of
/// SpAL → SpBL → PE over a shared multi-channel HBM, with per-lane output
/// writers appending C in C²SR.
///
/// # Example
///
/// ```rust
/// use matraptor_core::{Accelerator, MatRaptorConfig};
/// use matraptor_sparse::gen;
///
/// let a = gen::uniform(64, 64, 400, 1);
/// let outcome = Accelerator::new(MatRaptorConfig::default()).run(&a, &a);
/// assert_eq!(outcome.c.rows(), 64);
/// assert!(outcome.stats.total_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: MatRaptorConfig,
}

/// Result of one accelerator run: the output matrix plus measurements.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The computed product in CSR form.
    pub c: Csr<f64>,
    /// The same product in the C²SR layout the hardware wrote.
    pub c2sr: C2sr<f64>,
    /// Cycle counts, traffic, and breakdowns.
    pub stats: MatRaptorStats,
}

struct Lane {
    spal: SpAl,
    spbl: SpBl,
    pe: Pe,
    writer: Writer,
    spal_out: VecDeque<ATok>,
    pe_in: VecDeque<PeTok>,
}

/// A stream fault in flight: watches A tokens crossing the SpAL → SpBL
/// coupling FIFO of one lane and truncates or corrupts the `target`-th
/// *entry* token (empty-row markers don't count — dropping one would be
/// undetectable by construction).
struct StreamInjector {
    lane: usize,
    target: u64,
    seen: u64,
    truncate: bool,
    /// Column id to corrupt to (out of B's row range) when not truncating.
    corrupt_to: u32,
}

impl StreamInjector {
    /// Inspects a lane's coupling FIFO right after its SpAL tick, which
    /// pushes at most one token per cycle, so only the back can be new.
    fn inspect(&mut self, lane: usize, grew: bool, out: &mut VecDeque<ATok>) {
        if lane != self.lane || !grew {
            return;
        }
        if !matches!(out.back(), Some(ATok::Entry { .. })) {
            return;
        }
        if self.seen == self.target {
            if self.truncate {
                out.pop_back();
            } else if let Some(ATok::Entry { col, .. }) = out.back_mut() {
                *col = self.corrupt_to;
            }
        }
        self.seen += 1;
    }
}

/// Display names for watchdog lane sources (`&'static str` registry; lanes
/// beyond the table share the last name, which loses nothing — the
/// diagnostic carries real lane indices).
const LANE_NAMES: [&str; 16] = [
    "lane0", "lane1", "lane2", "lane3", "lane4", "lane5", "lane6", "lane7", "lane8", "lane9",
    "lane10", "lane11", "lane12", "lane13", "lane14", "lane15",
];

/// Cycle stride between watchdog observations: sampling every cycle would
/// put two small allocations on the hottest loop; every 64th cycle bounds
/// detection latency at `window + 64` while keeping the overhead noise.
const WATCHDOG_STRIDE: u64 = 64;

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MatRaptorConfig::validate`]).
    pub fn new(cfg: MatRaptorConfig) -> Self {
        cfg.validate();
        Accelerator { cfg }
    }

    /// Fallible constructor: rejects an invalid configuration with a
    /// structured [`ConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// The first constraint [`MatRaptorConfig::try_validate`] reports.
    pub fn try_new(cfg: MatRaptorConfig) -> Result<Self, ConfigError> {
        cfg.try_validate()?;
        Ok(Accelerator { cfg })
    }

    /// The configuration.
    pub fn config(&self) -> &MatRaptorConfig {
        &self.cfg
    }

    /// Runs the SpGEMM `a * b` through the simulated hardware.
    ///
    /// Thin panicking wrapper over [`Accelerator::try_run`] for call sites
    /// that treat any failure as fatal (benches, examples, tests of the
    /// happy path).
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message if the run fails: inner
    /// dimensions disagree, the watchdog declares a deadlock, the cycle
    /// budget trips, or — when `verify_against_reference` is set — the
    /// output mismatches the software Gustavson product.
    pub fn run(&self, a: &Csr<f64>, b: &Csr<f64>) -> RunOutcome {
        match self.try_run(a, b) {
            Ok(outcome) => outcome,
            // conformance:allow(panic-safety): deliberate fail-fast wrapper; fallible callers use try_run
            Err(e) => panic!("accelerator run failed: {e}"),
        }
    }

    /// Runs the SpGEMM `a * b` through the simulated hardware, reporting
    /// failures as structured [`SimError`]s.
    ///
    /// Inputs arrive in CSR and are laid out in C²SR exactly as the
    /// driver software would (the conversion cost is *not* charged here;
    /// the `fmt_conversion` experiment measures it separately, per
    /// Section VII). With no fault injected this is bit-identical to the
    /// historical panicking `run`: same cycle counts, same C values.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedInput`] for bad operands,
    /// [`SimError::Deadlock`] when the forward-progress watchdog fires,
    /// [`SimError::CycleBudgetExceeded`] if the budget backstop trips,
    /// [`SimError::QueueOverflow`] for unrecoverable overflows, and
    /// [`SimError::OutputCorrupted`] when an integrity check fails.
    pub fn try_run(&self, a: &Csr<f64>, b: &Csr<f64>) -> Result<RunOutcome, SimError> {
        self.try_run_with_faults(a, b, None)
    }

    /// [`Accelerator::try_run`] with an optional injected fault — the
    /// entry point fault campaigns drive.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::try_run`]; which variant depends on the fault
    /// (see [`FaultKind`]).
    pub fn try_run_with_faults(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
    ) -> Result<RunOutcome, SimError> {
        if a.cols() != b.rows() {
            return Err(SimError::MalformedInput(MalformedInput::InnerDimensionMismatch {
                a_cols: a.cols(),
                b_rows: b.rows(),
            }));
        }
        let cfg = &self.cfg;
        let lanes_n = cfg.num_lanes;
        let ac = C2sr::from_csr(a, lanes_n);
        let bc = C2sr::from_csr(b, lanes_n);

        let regions = Regions::DEFAULT;
        let entry = cfg.entry_bytes as u64;
        let a_layout = matrix_layout(&cfg.mem, regions.a_info, regions.a_data, entry);
        let b_layout = matrix_layout(&cfg.mem, regions.b_info, regions.b_data, entry);
        let c_layout = matrix_layout(&cfg.mem, regions.c_info, regions.c_data, entry);

        let mut hbm = Hbm::new(cfg.mem.clone());
        let mut lanes: Vec<Lane> = (0..lanes_n)
            .map(|l| Lane {
                spal: SpAl::new(l, cfg, &ac),
                spbl: SpBl::new(cfg),
                pe: Pe::new(cfg),
                writer: Writer::new(l, cfg, c_layout.data_base),
                spal_out: VecDeque::new(),
                pe_in: VecDeque::new(),
            })
            .collect();

        // Arm the injected fault, if any. Lane-targeted faults are
        // remapped to a lane that actually has work so a sampled site on
        // an empty lane cannot silently skip the injection.
        let mut stream_fault: Option<StreamInjector> = None;
        if let Some(plan) = plan {
            hbm.set_faults(plan.mem_faults());
            let site = {
                let preferred = plan.site % lanes_n;
                if ac.channel_nnz(preferred) > 0 {
                    preferred
                } else {
                    (0..lanes_n).find(|&l| ac.channel_nnz(l) > 0).unwrap_or(preferred)
                }
            };
            match plan.kind {
                FaultKind::StreamTruncation | FaultKind::StreamCorruption => {
                    let tokens = ac.channel_nnz(site) as u64;
                    if tokens > 0 {
                        stream_fault = Some(StreamInjector {
                            lane: site,
                            target: plan.ordinal % tokens,
                            seen: 0,
                            truncate: plan.kind == FaultKind::StreamTruncation,
                            corrupt_to: (bc.rows() as u32)
                                .saturating_add(1 + (plan.ordinal % 97) as u32),
                        });
                    }
                }
                FaultKind::QueueOverflowForce => {
                    lanes[site].pe.fault_force_overflow_after = Some(plan.ordinal % 32);
                    lanes[site].pe.cpu_fallback = false;
                }
                FaultKind::DroppedWrite => {
                    lanes[site].writer.fault_drop_append = Some(plan.ordinal % 64);
                }
                FaultKind::ChannelStall | FaultKind::BurstRefusal => {}
            }
        }

        // The forward-progress watchdog: every lane and the HBM register
        // as sources; the run aborts with a structured diagnostic if none
        // of them moves for a full window.
        let mut watchdog = Watchdog::new(cfg.watchdog_window);
        let lane_sources: Vec<_> = (0..lanes_n)
            .map(|l| watchdog.add_source(LANE_NAMES[l.min(LANE_NAMES.len() - 1)]))
            .collect();
        let hbm_source = watchdog.add_source("hbm");

        let fallback = |row: u32| reference_row(a, b, row as usize);

        let ratio = cfg.mem_clock_ratio();
        let mut next_id: u64 = 0;
        let mut route: BTreeMap<u64, usize> = BTreeMap::new();
        let mut inboxes: Vec<Vec<u64>> = vec![Vec::new(); lanes_n];

        // Generous budget: SpGEMM needs at least one cycle per product;
        // allow a large constant factor for memory stalls.
        let flops = spgemm::multiply_count(a, b);
        let budget = (flops * 200 + a.nnz() as u64 * 400 + 1_000_000) * ratio;

        let mut t: u64 = 0;
        loop {
            let mem_now = Cycle(t / ratio);
            if t.is_multiple_of(ratio) {
                hbm.tick(mem_now);
                while let Some(resp) = hbm.pop_response(mem_now) {
                    // conformance:allow(panic-safety): invariant: every in-flight response id was recorded in `route` when issued
                    let lane = route.remove(&resp.id.0).expect("response for unknown lane");
                    inboxes[lane].push(resp.id.0);
                }
            }

            let mut all_done = true;
            for (l, lane) in lanes.iter_mut().enumerate() {
                // Deliver responses.
                for id in inboxes[l].drain(..) {
                    if lane.spal.on_response(id, &ac) {
                        continue;
                    }
                    if lane.spbl.on_response(id) {
                        continue;
                    }
                    let consumed = lane.writer.on_response(id);
                    debug_assert!(consumed, "orphan response {id}");
                }

                let mut port = MemPort {
                    hbm: &mut hbm,
                    mem_now,
                    next_id: &mut next_id,
                    route: &mut route,
                    lane: l,
                };

                let upstream_done =
                    lane.spal.is_done() && lane.spbl.is_done() && lane.spal_out.is_empty();
                lane.pe.tick(
                    &mut lane.pe_in,
                    &mut lane.writer,
                    cfg,
                    &c_layout,
                    &fallback,
                    upstream_done,
                );
                lane.spbl.tick(
                    &mut port,
                    cfg,
                    &b_layout,
                    &bc,
                    &mut lane.spal_out,
                    &mut lane.pe_in,
                    cfg.coupling_fifo_depth,
                );
                let fifo_len_before = lane.spal_out.len();
                lane.spal.tick(
                    &mut port,
                    cfg,
                    &a_layout,
                    &ac,
                    &mut lane.spal_out,
                    cfg.coupling_fifo_depth,
                );
                if let Some(inj) = stream_fault.as_mut() {
                    inj.inspect(l, lane.spal_out.len() > fifo_len_before, &mut lane.spal_out);
                }
                lane.writer.tick(&mut port);

                if let Some((col, bound)) = lane.spbl.malformed_input() {
                    return Err(SimError::MalformedInput(MalformedInput::ColumnOutOfRange {
                        lane: l,
                        col,
                        bound,
                    }));
                }
                if let Some(row) = lane.pe.fatal_overflow {
                    return Err(SimError::QueueOverflow { lane: l, row });
                }

                let lane_done = lane.spal.is_done()
                    && lane.spbl.is_done()
                    && lane.spal_out.is_empty()
                    && lane.pe_in.is_empty()
                    && lane.pe.is_done(lane.pe_in.is_empty())
                    && lane.writer.is_done();
                all_done &= lane_done;
            }

            if std::env::var_os("MATRAPTOR_DEBUG").is_some() && t.is_multiple_of(100_000) {
                let l0 = &lanes[0];
                eprintln!(
                    "t={t} hbm_inflight={} spal={:?} spbl={:?} spal_out={} pe_in={}",
                    hbm.in_flight(),
                    l0.spal.debug_state(),
                    l0.spbl.debug_state(),
                    l0.spal_out.len(),
                    l0.pe_in.len()
                );
                let ch: Vec<String> = hbm
                    .channel_stats()
                    .iter()
                    .map(|c| {
                        format!("{:.2}", c.busy_cycles.get() as f64 / (t.max(1) / ratio) as f64)
                    })
                    .collect();
                eprintln!(
                    "  spbl blocked [data, info, staging_full, no_jobs] = {:?}; mean mem latency = {:.1}; ch busy = {:?}",
                    l0.spbl.blocked,
                    hbm.stats().mean_latency(),
                    ch
                );
            }
            if all_done && hbm.is_idle() && inboxes.iter().all(Vec::is_empty) {
                break;
            }

            if watchdog.window() > 0 && t.is_multiple_of(WATCHDOG_STRIDE) {
                for (l, lane) in lanes.iter().enumerate() {
                    let mut sig = mix_signature(0, lane.spal.progress_signature());
                    sig = mix_signature(sig, lane.spbl.progress_signature());
                    sig = mix_signature(sig, lane.pe.progress_signature());
                    sig = mix_signature(sig, lane.writer.progress_signature());
                    sig = mix_signature(sig, lane.spal_out.len() as u64);
                    sig = mix_signature(sig, lane.pe_in.len() as u64);
                    watchdog.observe(lane_sources[l], Cycle(t), sig);
                }
                // The HBM's signature must only move when it *services*
                // something: queue depths, in-flight count, and per-channel
                // busy counters. Fault counters are deliberately excluded —
                // a stalled channel accumulating stall ticks is not
                // progress.
                let mut sig = mix_signature(0, hbm.in_flight() as u64);
                for depth in hbm.queue_depths() {
                    sig = mix_signature(sig, depth as u64);
                }
                for ch in hbm.channel_stats() {
                    sig = mix_signature(sig, ch.busy_cycles.get());
                }
                watchdog.observe(hbm_source, Cycle(t), sig);
                if let Some(report) = watchdog.check(Cycle(t)) {
                    return Err(SimError::Deadlock(deadlock_diagnostic(&report, &lanes, &hbm)));
                }
            }

            t += 1;
            if t >= budget {
                return Err(SimError::CycleBudgetExceeded { budget, cycles: t });
            }
        }

        // Assemble the functional output in C²SR, per-lane row order.
        let mut c2sr =
            // conformance:allow(panic-safety): invariant: lane count is validated positive at construction
            C2sr::new_for_output(a.rows(), b.cols(), lanes_n).expect("positive lane count");
        for lane in &lanes {
            for row in &lane.writer.finished {
                c2sr.append_row(row.row as usize, &row.cols, &row.vals);
            }
        }
        if c2sr.validate().is_err() {
            return Err(SimError::OutputCorrupted { detail: "output violates C2SR invariants" });
        }
        let c = c2sr.to_csr();

        if cfg.verify_against_reference {
            let reference = spgemm::gustavson(a, b);
            if !c.approx_eq(&reference, 1e-6) {
                return Err(SimError::OutputCorrupted {
                    detail: "output diverges from the Gustavson reference",
                });
            }
        }

        // Aggregate statistics.
        let mut breakdown = CycleBreakdown::default();
        let mut per_pe_breakdown = Vec::with_capacity(lanes_n);
        let mut multiplies = 0u64;
        let mut additions = 0u64;
        let mut overflow_rows = 0usize;
        let mut overflow_padding = 0u64;
        let mut phase1 = 0u64;
        let mut phase2 = 0u64;
        for lane in &lanes {
            let b = lane.pe.breakdown();
            breakdown.merge_from(&b);
            per_pe_breakdown.push(b);
            multiplies += lane.pe.multiplies.get();
            additions += lane.pe.additions.get();
            overflow_rows += lane.pe.overflow_rows.len();
            overflow_padding += lane.writer.finished.iter().map(|r| r.padded_entries).sum::<u64>();
            phase1 += lane.pe.phase1_cycles.get();
            phase2 += lane.pe.phase2_cycles.get();
        }
        let mem_stats = hbm.stats();
        let per_pe_nnz = (0..lanes_n).map(|l| ac.channel_nnz(l) as u64).collect();

        Ok(RunOutcome {
            c,
            c2sr,
            stats: MatRaptorStats {
                total_cycles: t + 1,
                clock_ghz: cfg.clock_ghz,
                breakdown,
                per_pe_breakdown,
                multiplies,
                additions,
                bytes_read: mem_stats.bytes_read,
                bytes_written: mem_stats.bytes_written,
                traffic_read: mem_stats.traffic_read,
                traffic_written: mem_stats.traffic_written,
                per_pe_nnz,
                overflow_rows,
                overflow_padding_entries: overflow_padding,
                phase1_cycles: phase1,
                phase2_cycles: phase2,
            },
        })
    }
}

/// Builds the structured deadlock payload from the watchdog's report plus
/// the machine state at the moment the wedge was declared.
fn deadlock_diagnostic(report: &WatchdogReport, lanes: &[Lane], hbm: &Hbm) -> DeadlockDiagnostic {
    let lane_diags = lanes
        .iter()
        .enumerate()
        .map(|(l, lane)| {
            let (spal_in_flight, spal_staging, spal_rows_remaining) = lane.spal.occupancy();
            let (spbl_jobs, spbl_in_flight, spbl_staging) = lane.spbl.occupancy();
            let (writer_queued, writer_pending) = lane.writer.occupancy();
            LaneDiagnostic {
                lane: l,
                last_progress: report.sources.get(l).map_or(0, |s| s.last_progress.as_u64()),
                spal_in_flight,
                spal_staging,
                spal_rows_remaining,
                spbl_jobs,
                spbl_in_flight,
                spbl_staging,
                coupling_a_tokens: lane.spal_out.len(),
                coupling_products: lane.pe_in.len(),
                pe_active: lane.pe.is_active(),
                writer_queued,
                writer_pending,
            }
        })
        .collect();
    let channels = hbm
        .queue_depths()
        .into_iter()
        .enumerate()
        .map(|(channel, queue_depth)| ChannelDiagnostic { channel, queue_depth })
        .collect();
    DeadlockDiagnostic {
        declared_at: report.declared_at.as_u64(),
        window: report.window,
        last_progress: report.last_progress.as_u64(),
        lanes: lane_diags,
        channels,
    }
}

/// Software computation of one output row — the CPU-fallback path for
/// sorting-queue overflows (Section VII).
fn reference_row(a: &Csr<f64>, b: &Csr<f64>, i: usize) -> (Vec<u32>, Vec<f64>) {
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for (k, av) in a.row(i) {
        for (j, bv) in b.row(k as usize) {
            *acc.entry(j).or_insert(0.0) += av * bv;
        }
    }
    acc.into_iter().filter(|&(_, v)| v != 0.0).unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matraptor_sparse::gen;

    #[test]
    fn tiny_identity_product() {
        let eye = Csr::<f64>::identity(8);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&eye, &eye);
        assert_eq!(outcome.c, eye);
        assert_eq!(outcome.stats.overflow_rows, 0);
    }

    #[test]
    fn paper_fig2_matrix_squared() {
        // The 4x4 example matrix of Fig. 2/3.
        let mut coo = matraptor_sparse::Coo::new(4, 4);
        for &(r, c, v) in &[
            (0u32, 0u32, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 3, 4.0),
            (2, 1, 5.0),
            (3, 1, 6.0),
            (3, 2, 7.0),
        ] {
            coo.push(r, c, v);
        }
        let a = coo.compress();
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn random_product_matches_reference() {
        let a = gen::uniform(60, 60, 320, 5);
        let b = gen::uniform(60, 60, 300, 6);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &b);
        // verify_against_reference already asserts; sanity-check stats too.
        assert_eq!(outcome.stats.multiplies, spgemm::multiply_count(&a, &b));
        assert!(outcome.stats.total_cycles > 0);
        assert!(outcome.stats.bytes_read > 0);
        assert!(outcome.stats.bytes_written > 0);
    }

    #[test]
    fn empty_rows_and_columns_are_handled() {
        // Matrix with several all-zero rows.
        let a =
            Csr::from_parts(6, 6, vec![0, 2, 2, 2, 3, 3, 3], vec![1, 3, 0], vec![1.0, 2.0, 3.0])
                .unwrap();
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn zero_matrix_product() {
        let z = Csr::<f64>::zero(10, 10);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&z, &z);
        assert_eq!(outcome.c.nnz(), 0);
    }

    #[test]
    fn power_law_matrix_exercises_merge_path() {
        // RMAT rows force vectors > Q-1, exercising the merge+helper path.
        let a = gen::rmat(128, 1200, gen::RmatParams::default(), 9);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        let (busy, merge, mem, _) = outcome.stats.breakdown.fractions();
        assert!(busy > 0.0);
        assert!(merge > 0.0, "merge stalls expected on power-law inputs");
        assert!(mem >= 0.0);
    }

    #[test]
    fn queue_overflow_falls_back_to_cpu() {
        // Tiny queues + a dense-ish matrix forces overflow; the result
        // must still be correct and overflows reported.
        let cfg = MatRaptorConfig {
            queue_bytes: 64, // 8 entries per queue
            ..MatRaptorConfig::small_test()
        };
        let a = gen::uniform(32, 32, 512, 11);
        let outcome = Accelerator::new(cfg).run(&a, &a);
        assert!(outcome.stats.overflow_rows > 0, "expected overflows with 8-entry queues");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-6));
    }

    #[test]
    fn default_config_eight_lanes() {
        let a = gen::uniform(64, 64, 400, 12);
        let outcome = Accelerator::new(MatRaptorConfig::default()).run(&a, &a);
        assert_eq!(outcome.stats.per_pe_nnz.len(), 8);
        assert!(outcome.stats.load_imbalance() >= 1.0);
    }

    #[test]
    fn rectangular_product() {
        let a = gen::uniform(40, 60, 250, 13);
        let b = gen::uniform(60, 30, 260, 14);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &b);
        assert_eq!((outcome.c.rows(), outcome.c.cols()), (40, 30));
    }
}
