//! The top-level accelerator: lanes over a shared HBM.

use std::collections::{BTreeMap, VecDeque};

use matraptor_mem::Hbm;
use matraptor_sim::stats::CycleBreakdown;
use matraptor_sim::Cycle;
use matraptor_sparse::{spgemm, C2sr, Csr};

use crate::config::MatRaptorConfig;
use crate::layout::{matrix_layout, Regions};
use crate::pe::Pe;
use crate::port::MemPort;
use crate::spal::SpAl;
use crate::spbl::SpBl;
use crate::stats::MatRaptorStats;
use crate::tokens::{ATok, PeTok};
use crate::writer::Writer;

/// The MatRaptor accelerator (Fig. 5a): `num_lanes` rows of
/// SpAL → SpBL → PE over a shared multi-channel HBM, with per-lane output
/// writers appending C in C²SR.
///
/// # Example
///
/// ```rust
/// use matraptor_core::{Accelerator, MatRaptorConfig};
/// use matraptor_sparse::gen;
///
/// let a = gen::uniform(64, 64, 400, 1);
/// let outcome = Accelerator::new(MatRaptorConfig::default()).run(&a, &a);
/// assert_eq!(outcome.c.rows(), 64);
/// assert!(outcome.stats.total_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: MatRaptorConfig,
}

/// Result of one accelerator run: the output matrix plus measurements.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The computed product in CSR form.
    pub c: Csr<f64>,
    /// The same product in the C²SR layout the hardware wrote.
    pub c2sr: C2sr<f64>,
    /// Cycle counts, traffic, and breakdowns.
    pub stats: MatRaptorStats,
}

struct Lane {
    spal: SpAl,
    spbl: SpBl,
    pe: Pe,
    writer: Writer,
    spal_out: VecDeque<ATok>,
    pe_in: VecDeque<PeTok>,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MatRaptorConfig::validate`]).
    pub fn new(cfg: MatRaptorConfig) -> Self {
        cfg.validate();
        Accelerator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &MatRaptorConfig {
        &self.cfg
    }

    /// Runs the SpGEMM `a * b` through the simulated hardware.
    ///
    /// Inputs arrive in CSR and are laid out in C²SR exactly as the
    /// driver software would (the conversion cost is *not* charged here;
    /// the `fmt_conversion` experiment measures it separately, per
    /// Section VII).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree, if the simulation fails to
    /// drain (a model bug), or — when `verify_against_reference` is set —
    /// if the output mismatches the software Gustavson product.
    pub fn run(&self, a: &Csr<f64>, b: &Csr<f64>) -> RunOutcome {
        assert_eq!(
            a.cols(),
            b.rows(),
            "inner dimensions must agree: {}x{} * {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let cfg = &self.cfg;
        let lanes_n = cfg.num_lanes;
        let ac = C2sr::from_csr(a, lanes_n);
        let bc = C2sr::from_csr(b, lanes_n);

        let regions = Regions::DEFAULT;
        let entry = cfg.entry_bytes as u64;
        let a_layout = matrix_layout(&cfg.mem, regions.a_info, regions.a_data, entry);
        let b_layout = matrix_layout(&cfg.mem, regions.b_info, regions.b_data, entry);
        let c_layout = matrix_layout(&cfg.mem, regions.c_info, regions.c_data, entry);

        let mut hbm = Hbm::new(cfg.mem.clone());
        let mut lanes: Vec<Lane> = (0..lanes_n)
            .map(|l| Lane {
                spal: SpAl::new(l, cfg, &ac),
                spbl: SpBl::new(cfg),
                pe: Pe::new(cfg),
                writer: Writer::new(l, cfg, c_layout.data_base),
                spal_out: VecDeque::new(),
                pe_in: VecDeque::new(),
            })
            .collect();

        let fallback = |row: u32| reference_row(a, b, row as usize);

        let ratio = cfg.mem_clock_ratio();
        let mut next_id: u64 = 0;
        let mut route: BTreeMap<u64, usize> = BTreeMap::new();
        let mut inboxes: Vec<Vec<u64>> = vec![Vec::new(); lanes_n];

        // Generous budget: SpGEMM needs at least one cycle per product;
        // allow a large constant factor for memory stalls.
        let flops = spgemm::multiply_count(a, b);
        let budget = (flops * 200 + a.nnz() as u64 * 400 + 1_000_000) * ratio;

        let mut t: u64 = 0;
        loop {
            let mem_now = Cycle(t / ratio);
            if t.is_multiple_of(ratio) {
                hbm.tick(mem_now);
                while let Some(resp) = hbm.pop_response(mem_now) {
                    // conformance:allow(panic-safety): invariant: every in-flight response id was recorded in `route` when issued
                    let lane = route.remove(&resp.id.0).expect("response for unknown lane");
                    inboxes[lane].push(resp.id.0);
                }
            }

            let mut all_done = true;
            for (l, lane) in lanes.iter_mut().enumerate() {
                // Deliver responses.
                for id in inboxes[l].drain(..) {
                    if lane.spal.on_response(id, &ac) {
                        continue;
                    }
                    if lane.spbl.on_response(id) {
                        continue;
                    }
                    let consumed = lane.writer.on_response(id);
                    debug_assert!(consumed, "orphan response {id}");
                }

                let mut port = MemPort {
                    hbm: &mut hbm,
                    mem_now,
                    next_id: &mut next_id,
                    route: &mut route,
                    lane: l,
                };

                let upstream_done =
                    lane.spal.is_done() && lane.spbl.is_done() && lane.spal_out.is_empty();
                lane.pe.tick(
                    &mut lane.pe_in,
                    &mut lane.writer,
                    cfg,
                    &c_layout,
                    &fallback,
                    upstream_done,
                );
                lane.spbl.tick(
                    &mut port,
                    cfg,
                    &b_layout,
                    &bc,
                    &mut lane.spal_out,
                    &mut lane.pe_in,
                    cfg.coupling_fifo_depth,
                );
                lane.spal.tick(
                    &mut port,
                    cfg,
                    &a_layout,
                    &ac,
                    &mut lane.spal_out,
                    cfg.coupling_fifo_depth,
                );
                lane.writer.tick(&mut port);

                let lane_done = lane.spal.is_done()
                    && lane.spbl.is_done()
                    && lane.spal_out.is_empty()
                    && lane.pe_in.is_empty()
                    && lane.pe.is_done(lane.pe_in.is_empty())
                    && lane.writer.is_done();
                all_done &= lane_done;
            }

            if std::env::var_os("MATRAPTOR_DEBUG").is_some() && t.is_multiple_of(100_000) {
                let l0 = &lanes[0];
                eprintln!(
                    "t={t} hbm_inflight={} spal={:?} spbl={:?} spal_out={} pe_in={}",
                    hbm.in_flight(),
                    l0.spal.debug_state(),
                    l0.spbl.debug_state(),
                    l0.spal_out.len(),
                    l0.pe_in.len()
                );
                let ch: Vec<String> = hbm
                    .channel_stats()
                    .iter()
                    .map(|c| {
                        format!("{:.2}", c.busy_cycles.get() as f64 / (t.max(1) / ratio) as f64)
                    })
                    .collect();
                eprintln!(
                    "  spbl blocked [data, info, staging_full, no_jobs] = {:?}; mean mem latency = {:.1}; ch busy = {:?}",
                    l0.spbl.blocked,
                    hbm.stats().mean_latency(),
                    ch
                );
            }
            if all_done && hbm.is_idle() && inboxes.iter().all(Vec::is_empty) {
                break;
            }
            t += 1;
            assert!(t < budget, "accelerator simulation did not drain within budget");
        }

        // Assemble the functional output in C²SR, per-lane row order.
        let mut c2sr =
            // conformance:allow(panic-safety): invariant: lane count is validated positive at construction
            C2sr::new_for_output(a.rows(), b.cols(), lanes_n).expect("positive lane count");
        for lane in &lanes {
            for row in &lane.writer.finished {
                c2sr.append_row(row.row as usize, &row.cols, &row.vals);
            }
        }
        // conformance:allow(panic-safety): invariant check on the model's own output; a failure here is a simulator bug
        c2sr.validate().expect("accelerator output violates C2SR invariants");
        let c = c2sr.to_csr();

        if cfg.verify_against_reference {
            let reference = spgemm::gustavson(a, b);
            assert!(
                c.approx_eq(&reference, 1e-6),
                "accelerator output diverges from the Gustavson reference"
            );
        }

        // Aggregate statistics.
        let mut breakdown = CycleBreakdown::default();
        let mut per_pe_breakdown = Vec::with_capacity(lanes_n);
        let mut multiplies = 0u64;
        let mut additions = 0u64;
        let mut overflow_rows = 0usize;
        let mut overflow_padding = 0u64;
        let mut phase1 = 0u64;
        let mut phase2 = 0u64;
        for lane in &lanes {
            let b = lane.pe.breakdown();
            breakdown.merge_from(&b);
            per_pe_breakdown.push(b);
            multiplies += lane.pe.multiplies.get();
            additions += lane.pe.additions.get();
            overflow_rows += lane.pe.overflow_rows.len();
            overflow_padding += lane.writer.finished.iter().map(|r| r.padded_entries).sum::<u64>();
            phase1 += lane.pe.phase1_cycles.get();
            phase2 += lane.pe.phase2_cycles.get();
        }
        let mem_stats = hbm.stats();
        let per_pe_nnz = (0..lanes_n).map(|l| ac.channel_nnz(l) as u64).collect();

        RunOutcome {
            c,
            c2sr,
            stats: MatRaptorStats {
                total_cycles: t + 1,
                clock_ghz: cfg.clock_ghz,
                breakdown,
                per_pe_breakdown,
                multiplies,
                additions,
                bytes_read: mem_stats.bytes_read,
                bytes_written: mem_stats.bytes_written,
                traffic_read: mem_stats.traffic_read,
                traffic_written: mem_stats.traffic_written,
                per_pe_nnz,
                overflow_rows,
                overflow_padding_entries: overflow_padding,
                phase1_cycles: phase1,
                phase2_cycles: phase2,
            },
        }
    }
}

/// Software computation of one output row — the CPU-fallback path for
/// sorting-queue overflows (Section VII).
fn reference_row(a: &Csr<f64>, b: &Csr<f64>, i: usize) -> (Vec<u32>, Vec<f64>) {
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for (k, av) in a.row(i) {
        for (j, bv) in b.row(k as usize) {
            *acc.entry(j).or_insert(0.0) += av * bv;
        }
    }
    acc.into_iter().filter(|&(_, v)| v != 0.0).unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matraptor_sparse::gen;

    #[test]
    fn tiny_identity_product() {
        let eye = Csr::<f64>::identity(8);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&eye, &eye);
        assert_eq!(outcome.c, eye);
        assert_eq!(outcome.stats.overflow_rows, 0);
    }

    #[test]
    fn paper_fig2_matrix_squared() {
        // The 4x4 example matrix of Fig. 2/3.
        let mut coo = matraptor_sparse::Coo::new(4, 4);
        for &(r, c, v) in &[
            (0u32, 0u32, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 3, 4.0),
            (2, 1, 5.0),
            (3, 1, 6.0),
            (3, 2, 7.0),
        ] {
            coo.push(r, c, v);
        }
        let a = coo.compress();
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn random_product_matches_reference() {
        let a = gen::uniform(60, 60, 320, 5);
        let b = gen::uniform(60, 60, 300, 6);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &b);
        // verify_against_reference already asserts; sanity-check stats too.
        assert_eq!(outcome.stats.multiplies, spgemm::multiply_count(&a, &b));
        assert!(outcome.stats.total_cycles > 0);
        assert!(outcome.stats.bytes_read > 0);
        assert!(outcome.stats.bytes_written > 0);
    }

    #[test]
    fn empty_rows_and_columns_are_handled() {
        // Matrix with several all-zero rows.
        let a =
            Csr::from_parts(6, 6, vec![0, 2, 2, 2, 3, 3, 3], vec![1, 3, 0], vec![1.0, 2.0, 3.0])
                .unwrap();
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn zero_matrix_product() {
        let z = Csr::<f64>::zero(10, 10);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&z, &z);
        assert_eq!(outcome.c.nnz(), 0);
    }

    #[test]
    fn power_law_matrix_exercises_merge_path() {
        // RMAT rows force vectors > Q-1, exercising the merge+helper path.
        let a = gen::rmat(128, 1200, gen::RmatParams::default(), 9);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        let (busy, merge, mem, _) = outcome.stats.breakdown.fractions();
        assert!(busy > 0.0);
        assert!(merge > 0.0, "merge stalls expected on power-law inputs");
        assert!(mem >= 0.0);
    }

    #[test]
    fn queue_overflow_falls_back_to_cpu() {
        // Tiny queues + a dense-ish matrix forces overflow; the result
        // must still be correct and overflows reported.
        let cfg = MatRaptorConfig {
            queue_bytes: 64, // 8 entries per queue
            ..MatRaptorConfig::small_test()
        };
        let a = gen::uniform(32, 32, 512, 11);
        let outcome = Accelerator::new(cfg).run(&a, &a);
        assert!(outcome.stats.overflow_rows > 0, "expected overflows with 8-entry queues");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-6));
    }

    #[test]
    fn default_config_eight_lanes() {
        let a = gen::uniform(64, 64, 400, 12);
        let outcome = Accelerator::new(MatRaptorConfig::default()).run(&a, &a);
        assert_eq!(outcome.stats.per_pe_nnz.len(), 8);
        assert!(outcome.stats.load_imbalance() >= 1.0);
    }

    #[test]
    fn rectangular_product() {
        let a = gen::uniform(40, 60, 250, 13);
        let b = gen::uniform(60, 30, 260, 14);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &b);
        assert_eq!((outcome.c.rows(), outcome.c.cols()), (40, 30));
    }
}
