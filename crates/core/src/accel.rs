//! The top-level accelerator: lanes over a shared HBM.

use std::collections::{BTreeMap, VecDeque};

use matraptor_mem::Hbm;
use matraptor_sim::stats::CycleBreakdown;
use matraptor_sim::trace::StageBreakdown;
use matraptor_sim::watchdog::mix_signature;
use matraptor_sim::{Cycle, SourceId, SourceState, Watchdog, WatchdogReport};
use matraptor_sparse::{abft, spgemm, C2sr, Csr};

use crate::checkpoint::{
    fingerprint_config, fingerprint_matrix, Checkpoint, CheckpointState, LaneState,
    StreamFaultState, WdSourceState,
};
use crate::config::MatRaptorConfig;
use crate::error::{
    ChannelDiagnostic, ConfigError, DeadlockDiagnostic, LaneDiagnostic, MalformedInput, SimError,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::layout::{matrix_layout, MatrixLayout, Regions};
use crate::pe::Pe;
use crate::port::MemPort;
use crate::spal::SpAl;
use crate::spbl::SpBl;
use crate::stats::{LaneAttribution, MatRaptorStats};
use crate::tokens::{ATok, PeTok};
use crate::trace::{RunTrace, TraceConfig, TraceSampler};
use crate::writer::Writer;

/// The MatRaptor accelerator (Fig. 5a): `num_lanes` rows of
/// SpAL → SpBL → PE over a shared multi-channel HBM, with per-lane output
/// writers appending C in C²SR.
///
/// # Example
///
/// ```rust
/// use matraptor_core::{Accelerator, MatRaptorConfig};
/// use matraptor_sparse::gen;
///
/// let a = gen::uniform(64, 64, 400, 1);
/// let outcome = Accelerator::new(MatRaptorConfig::default()).run(&a, &a);
/// assert_eq!(outcome.c.rows(), 64);
/// assert!(outcome.stats.total_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: MatRaptorConfig,
}

/// Result of one accelerator run: the output matrix plus measurements.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The computed product in CSR form.
    pub c: Csr<f64>,
    /// The same product in the C²SR layout the hardware wrote.
    pub c2sr: C2sr<f64>,
    /// Cycle counts, traffic, and breakdowns.
    pub stats: MatRaptorStats,
}

/// How a deadline-bounded run ended: finished inside the budget, or
/// cancelled at the deadline with the machine state captured via the
/// checkpoint path (so a scheduler that changes its mind — or a debugger —
/// can still resume the cancelled work with [`Accelerator::try_run_from`]).
#[derive(Debug)]
pub enum DeadlineRun {
    /// The run drained before the deadline. Boxed to keep the enum near
    /// pointer size next to the slim `Cancelled` payload.
    Completed(Box<RunOutcome>),
    /// The run was cancelled at the deadline cycle; the payload is the
    /// full machine state at the moment of cancellation.
    Cancelled(Box<Checkpoint>),
}

/// Outcome of one bounded execution slice ([`Accelerator::try_run_slice`]):
/// the job either drained inside the slice or was paused at the slice
/// boundary with a resumable [`Checkpoint`] to hand to the next slice —
/// possibly on a *different* worker holding an identically-configured
/// accelerator, which is exactly the fleet re-dispatch path.
#[derive(Debug)]
pub enum SliceRun {
    /// The run drained at or before the slice boundary. Boxed to keep the
    /// enum near pointer size next to the slim `Paused` payload.
    Completed(Box<RunOutcome>),
    /// The run paused at the slice boundary; the payload resumes it via
    /// another `try_run_slice` call (or [`Accelerator::try_run_from`]).
    Paused(Box<Checkpoint>),
}

/// A failed checkpointing run: the error plus the last checkpoint taken
/// before the failure, if any — the input to the recovery ladder's
/// resume-from-checkpoint rung.
#[derive(Debug)]
pub struct FailedRun {
    /// Why the run failed.
    pub error: SimError,
    /// The most recent checkpoint preceding the failure. `None` when the
    /// run failed before the first checkpoint interval elapsed. Boxed:
    /// a checkpoint holds the whole machine state, and the happy path
    /// should not pay its size in the `Result`.
    pub checkpoint: Option<Box<Checkpoint>>,
}

struct Lane {
    spal: SpAl,
    spbl: SpBl,
    pe: Pe,
    writer: Writer,
    spal_out: VecDeque<ATok>,
    pe_in: VecDeque<PeTok>,
}

impl Lane {
    /// The lane's per-stage cycle attribution, with the PE's existing
    /// Fig. 9 breakdown mapped onto the common four-bucket vocabulary.
    fn attribution(&self) -> LaneAttribution {
        LaneAttribution {
            spal: *self.spal.attribution(),
            spbl: *self.spbl.attribution(),
            pe: StageBreakdown::from_cycle_breakdown(&self.pe.breakdown()),
            writer: *self.writer.attribution(),
        }
    }
}

/// A stream fault in flight: watches A tokens crossing the SpAL → SpBL
/// coupling FIFO of one lane and truncates or corrupts the `target`-th
/// *entry* token (empty-row markers don't count — dropping one would be
/// undetectable by construction).
struct StreamInjector {
    lane: usize,
    target: u64,
    seen: u64,
    truncate: bool,
    /// Column id to corrupt to (out of B's row range) when not truncating.
    corrupt_to: u32,
}

impl StreamInjector {
    /// Inspects a lane's coupling FIFO right after its SpAL tick, which
    /// pushes at most one token per cycle, so only the back can be new.
    fn inspect(&mut self, lane: usize, grew: bool, out: &mut VecDeque<ATok>) {
        if lane != self.lane || !grew {
            return;
        }
        if !matches!(out.back(), Some(ATok::Entry { .. })) {
            return;
        }
        if self.seen == self.target {
            if self.truncate {
                out.pop_back();
            } else if let Some(ATok::Entry { col, .. }) = out.back_mut() {
                *col = self.corrupt_to;
            }
        }
        self.seen += 1;
    }
}

/// Read-only context of a run: everything deterministically derived from
/// `(config, A, B)` once, shared by fresh starts and checkpoint resumes.
/// Because it is recomputed — never serialized — a checkpoint stays small
/// and a resume is guaranteed to see the exact layouts and budgets the
/// original run saw (the fingerprints in the checkpoint enforce that the
/// inputs really are the same).
struct RunContext<'m> {
    a: &'m Csr<f64>,
    b: &'m Csr<f64>,
    ac: C2sr<f64>,
    bc: C2sr<f64>,
    a_layout: MatrixLayout,
    b_layout: MatrixLayout,
    c_layout: MatrixLayout,
    ratio: u64,
    budget: u64,
}

/// The complete mutable state of a run — exactly what a [`Checkpoint`]
/// captures. The per-cycle `inboxes` are deliberately absent: they are
/// provably empty at the top of every cycle (responses are drained in the
/// same iteration they pop), which is where snapshots are taken.
struct RunState {
    t: u64,
    next_id: u64,
    route: BTreeMap<u64, usize>,
    lanes: Vec<Lane>,
    hbm: Hbm,
    stream_fault: Option<StreamInjector>,
    watchdog: Watchdog,
    lane_sources: Vec<SourceId>,
    hbm_source: SourceId,
}

/// Display names for watchdog lane sources (`&'static str` registry; lanes
/// beyond the table share the last name, which loses nothing — the
/// diagnostic carries real lane indices).
const LANE_NAMES: [&str; 16] = [
    "lane0", "lane1", "lane2", "lane3", "lane4", "lane5", "lane6", "lane7", "lane8", "lane9",
    "lane10", "lane11", "lane12", "lane13", "lane14", "lane15",
];

/// Cycle stride between watchdog observations: sampling every cycle would
/// put two small allocations on the hottest loop; every 64th cycle bounds
/// detection latency at `window + 64` while keeping the overhead noise.
const WATCHDOG_STRIDE: u64 = 64;

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MatRaptorConfig::validate`]).
    pub fn new(cfg: MatRaptorConfig) -> Self {
        cfg.validate();
        Accelerator { cfg }
    }

    /// Fallible constructor: rejects an invalid configuration with a
    /// structured [`ConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// The first constraint [`MatRaptorConfig::try_validate`] reports.
    #[must_use = "dropping the Result discards the constructed accelerator or the config error"]
    pub fn try_new(cfg: MatRaptorConfig) -> Result<Self, ConfigError> {
        cfg.try_validate()?;
        Ok(Accelerator { cfg })
    }

    /// The configuration.
    pub fn config(&self) -> &MatRaptorConfig {
        &self.cfg
    }

    /// Runs the SpGEMM `a * b` through the simulated hardware.
    ///
    /// Thin panicking wrapper over [`Accelerator::try_run`] for call sites
    /// that treat any failure as fatal (benches, examples, tests of the
    /// happy path).
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message if the run fails: inner
    /// dimensions disagree, the watchdog declares a deadlock, the cycle
    /// budget trips, or — when `verify_against_reference` is set — the
    /// output mismatches the software Gustavson product.
    pub fn run(&self, a: &Csr<f64>, b: &Csr<f64>) -> RunOutcome {
        match self.try_run(a, b) {
            Ok(outcome) => outcome,
            // conformance:allow(panic-safety): deliberate fail-fast wrapper; fallible callers use try_run
            Err(e) => panic!("accelerator run failed: {e}"),
        }
    }

    /// Runs the SpGEMM `a * b` through the simulated hardware, reporting
    /// failures as structured [`SimError`]s.
    ///
    /// Inputs arrive in CSR and are laid out in C²SR exactly as the
    /// driver software would (the conversion cost is *not* charged here;
    /// the `fmt_conversion` experiment measures it separately, per
    /// Section VII). With no fault injected this is bit-identical to the
    /// historical panicking `run`: same cycle counts, same C values.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedInput`] for bad operands,
    /// [`SimError::Deadlock`] when the forward-progress watchdog fires,
    /// [`SimError::CycleBudgetExceeded`] if the budget backstop trips,
    /// [`SimError::QueueOverflow`] for unrecoverable overflows, and
    /// [`SimError::OutputCorrupted`] when an integrity check fails.
    #[must_use = "dropping the Result loses both the run outcome and any fault diagnosis"]
    pub fn try_run(&self, a: &Csr<f64>, b: &Csr<f64>) -> Result<RunOutcome, SimError> {
        self.try_run_with_faults(a, b, None)
    }

    /// [`Accelerator::try_run`] with an optional injected fault — the
    /// entry point fault campaigns drive.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::try_run`]; which variant depends on the fault
    /// (see [`FaultKind`]).
    #[must_use = "dropping the Result loses both the run outcome and any fault diagnosis"]
    pub fn try_run_with_faults(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
    ) -> Result<RunOutcome, SimError> {
        let ctx = self.prepare_context(a, b)?;
        let mut state = self.fresh_state(&ctx, plan);
        let completed = self.drive(&ctx, &mut state, None)?;
        debug_assert!(completed, "unbounded drive returned without completing");
        self.finalize(&ctx, &state)
    }

    /// [`Accelerator::try_run_with_faults`] with heavy tracing enabled:
    /// alongside the normal outcome, records windowed per-channel traffic
    /// timelines, queue-occupancy histograms, and per-lane stage
    /// attribution timelines ([`RunTrace`]), exportable as
    /// `chrome://tracing` JSON.
    ///
    /// Tracing is observational only — the run's cycles, output, and
    /// statistics are bit-identical to the untraced entry points.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::try_run_with_faults`]. No trace is returned for a
    /// failed run.
    #[must_use = "dropping the Result loses both the run outcome and any fault diagnosis"]
    pub fn try_run_traced(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        trace_cfg: &TraceConfig,
    ) -> Result<(RunOutcome, RunTrace), SimError> {
        let ctx = self.prepare_context(a, b)?;
        let mut state = self.fresh_state(&ctx, plan);
        let mut sampler =
            TraceSampler::new(trace_cfg, self.cfg.mem.num_channels, self.cfg.num_lanes);
        let completed = self.drive_observed(&ctx, &mut state, None, Some(&mut sampler))?;
        debug_assert!(completed, "unbounded drive returned without completing");
        let outcome = self.finalize(&ctx, &state)?;
        let attrs: Vec<LaneAttribution> = state.lanes.iter().map(Lane::attribution).collect();
        let trace = sampler.finish(state.t + 1, ctx.ratio, &state.hbm.channel_stats(), &attrs);
        Ok((outcome, trace))
    }

    /// Runs until accelerator cycle `at_cycle` and captures a resumable
    /// [`Checkpoint`] of the full machine state, or `None` if the run
    /// drained before reaching that cycle.
    ///
    /// Resuming the checkpoint with [`Accelerator::try_run_from`] yields
    /// bit-identical cycle counts and output values to the uninterrupted
    /// run — the replay-determinism invariant of DESIGN.md §9.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::try_run`], for failures occurring *before* the
    /// checkpoint cycle.
    #[must_use = "dropping the Result loses the checkpoint or the fault diagnosis"]
    pub fn try_run_to_checkpoint(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        at_cycle: u64,
    ) -> Result<Option<Checkpoint>, SimError> {
        let ctx = self.prepare_context(a, b)?;
        let mut state = self.fresh_state(&ctx, plan);
        if self.drive(&ctx, &mut state, Some(at_cycle))? {
            Ok(None)
        } else {
            Ok(Some(self.snapshot_run(&ctx, &state)))
        }
    }

    /// Runs `a * b` under a hard per-job cycle budget: if the machine has
    /// not drained by accelerator cycle `deadline`, the run is *cancelled*
    /// — the drive loop pauses at the deadline exactly as the checkpoint
    /// path does, and the machine state at that cycle is returned as the
    /// cancellation artifact. This is the cancellation hook the multi-job
    /// service layer's deadline enforcement is built on: a cancelled job
    /// costs exactly `deadline` simulated cycles, never more.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::try_run`], for failures occurring *before* the
    /// deadline cycle.
    #[must_use = "dropping the Result loses the deadline verdict"]
    pub fn try_run_deadline(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        deadline: u64,
    ) -> Result<DeadlineRun, SimError> {
        let ctx = self.prepare_context(a, b)?;
        let mut state = self.fresh_state(&ctx, plan);
        if self.drive(&ctx, &mut state, Some(deadline))? {
            self.finalize(&ctx, &state).map(|outcome| DeadlineRun::Completed(Box::new(outcome)))
        } else {
            Ok(DeadlineRun::Cancelled(Box::new(self.snapshot_run(&ctx, &state))))
        }
    }

    /// Executes one bounded *slice* of a run: starts fresh (arming `plan`)
    /// when `from` is `None`, otherwise resumes the given checkpoint, and
    /// drives until the machine drains or accelerator cycle `until_cycle`
    /// is reached — whichever comes first.
    ///
    /// This is the checkpoint-handoff primitive of the worker fleet: a
    /// worker runs a job slice-by-slice, heartbeating between slices, and
    /// on a crash the last `Paused` checkpoint re-dispatches the job to
    /// any identically-configured worker with bit-identical results
    /// (DESIGN.md §9 replay invariant — the checkpoint's config and input
    /// fingerprints enforce the "identically configured" part).
    ///
    /// When resuming, `plan` is ignored: armed fault state rides the
    /// checkpoint, exactly as in [`Accelerator::try_run_from`].
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointMismatch`] for foreign checkpoints; otherwise
    /// as [`Accelerator::try_run`], for failures inside the slice.
    #[must_use = "dropping the Result loses the slice outcome or pause checkpoint"]
    pub fn try_run_slice(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        from: Option<&Checkpoint>,
        until_cycle: u64,
    ) -> Result<SliceRun, SimError> {
        let ctx = self.prepare_context(a, b)?;
        let mut state = match from {
            Some(checkpoint) => self.restore_run(&ctx, checkpoint)?,
            None => self.fresh_state(&ctx, plan),
        };
        if self.drive(&ctx, &mut state, Some(until_cycle))? {
            self.finalize(&ctx, &state).map(|outcome| SliceRun::Completed(Box::new(outcome)))
        } else {
            Ok(SliceRun::Paused(Box::new(self.snapshot_run(&ctx, &state))))
        }
    }

    /// Resumes a run from a [`Checkpoint`] and drives it to completion.
    ///
    /// The operands must be the same matrices the checkpoint was taken
    /// from, under the same configuration; fingerprint mismatches are
    /// rejected with [`SimError::CheckpointMismatch`] instead of silently
    /// diverging.
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointMismatch`] for foreign checkpoints; otherwise
    /// as [`Accelerator::try_run`].
    #[must_use = "dropping the Result loses the resumed run outcome"]
    pub fn try_run_from(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        checkpoint: &Checkpoint,
    ) -> Result<RunOutcome, SimError> {
        let ctx = self.prepare_context(a, b)?;
        let mut state = self.restore_run(&ctx, checkpoint)?;
        let completed = self.drive(&ctx, &mut state, None)?;
        debug_assert!(completed, "unbounded drive returned without completing");
        self.finalize(&ctx, &state)
    }

    /// [`Accelerator::try_run_with_faults`] that additionally takes a
    /// checkpoint every `every` accelerator cycles (`0` disables
    /// checkpointing), so a failure returns the last pre-failure machine
    /// state alongside the error — the entry point of the recovery
    /// ladder's resume rung.
    ///
    /// # Errors
    ///
    /// A [`FailedRun`] carrying the [`SimError`] and the most recent
    /// checkpoint taken before the failure (if any).
    #[must_use = "dropping the Result loses the run outcome and its checkpoints"]
    pub fn try_run_with_checkpoints(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
        plan: Option<&FaultPlan>,
        every: u64,
    ) -> Result<RunOutcome, FailedRun> {
        let ctx = match self.prepare_context(a, b) {
            Ok(ctx) => ctx,
            Err(error) => return Err(FailedRun { error, checkpoint: None }),
        };
        let mut state = self.fresh_state(&ctx, plan);
        let mut last: Option<Box<Checkpoint>> = None;
        loop {
            let pause = if every == 0 { None } else { Some(state.t + every) };
            match self.drive(&ctx, &mut state, pause) {
                Ok(true) => {
                    return self
                        .finalize(&ctx, &state)
                        .map_err(|error| FailedRun { error, checkpoint: last });
                }
                Ok(false) => last = Some(Box::new(self.snapshot_run(&ctx, &state))),
                Err(error) => return Err(FailedRun { error, checkpoint: last }),
            }
        }
    }

    /// Validates operands and derives the read-only run context.
    fn prepare_context<'m>(
        &self,
        a: &'m Csr<f64>,
        b: &'m Csr<f64>,
    ) -> Result<RunContext<'m>, SimError> {
        if a.cols() != b.rows() {
            return Err(SimError::MalformedInput(MalformedInput::InnerDimensionMismatch {
                a_cols: a.cols(),
                b_rows: b.rows(),
            }));
        }
        let cfg = &self.cfg;
        let lanes_n = cfg.num_lanes;
        let ac = C2sr::from_csr(a, lanes_n);
        let bc = C2sr::from_csr(b, lanes_n);

        let regions = Regions::DEFAULT;
        let entry = cfg.entry_bytes as u64;
        let a_layout = matrix_layout(&cfg.mem, regions.a_info, regions.a_data, entry);
        let b_layout = matrix_layout(&cfg.mem, regions.b_info, regions.b_data, entry);
        let c_layout = matrix_layout(&cfg.mem, regions.c_info, regions.c_data, entry);

        let ratio = cfg.mem_clock_ratio();
        // Generous budget: SpGEMM needs at least one cycle per product;
        // allow a large constant factor for memory stalls.
        let flops = spgemm::multiply_count(a, b);
        let budget = (flops * 200 + a.nnz() as u64 * 400 + 1_000_000) * ratio;

        Ok(RunContext { a, b, ac, bc, a_layout, b_layout, c_layout, ratio, budget })
    }

    /// Builds the watchdog with one source per lane plus the HBM —
    /// identical registration order for fresh starts and restores, so a
    /// restored [`SourceId`] indexes the same source.
    fn build_watchdog(&self) -> (Watchdog, Vec<SourceId>, SourceId) {
        let mut watchdog = Watchdog::new(self.cfg.watchdog_window);
        let lane_sources: Vec<_> = (0..self.cfg.num_lanes)
            .map(|l| watchdog.add_source(LANE_NAMES[l.min(LANE_NAMES.len() - 1)]))
            .collect();
        let hbm_source = watchdog.add_source("hbm");
        (watchdog, lane_sources, hbm_source)
    }

    /// Builds the machine at cycle 0 and arms the fault plan, if any.
    fn fresh_state(&self, ctx: &RunContext<'_>, plan: Option<&FaultPlan>) -> RunState {
        let cfg = &self.cfg;
        let lanes_n = cfg.num_lanes;
        let mut hbm = Hbm::new(cfg.mem.clone());
        let mut lanes: Vec<Lane> = (0..lanes_n)
            .map(|l| Lane {
                spal: SpAl::new(l, cfg, &ctx.ac),
                spbl: SpBl::new(cfg),
                pe: Pe::new(cfg),
                writer: Writer::new(l, cfg, ctx.c_layout.data_base),
                spal_out: VecDeque::new(),
                pe_in: VecDeque::new(),
            })
            .collect();

        // Arm the injected fault, if any. Lane-targeted faults are
        // remapped to a lane that actually has work so a sampled site on
        // an empty lane cannot silently skip the injection.
        let mut stream_fault: Option<StreamInjector> = None;
        if let Some(plan) = plan {
            hbm.set_faults(plan.mem_faults());
            let site = {
                let preferred = plan.site % lanes_n;
                if ctx.ac.channel_nnz(preferred) > 0 {
                    preferred
                } else {
                    (0..lanes_n).find(|&l| ctx.ac.channel_nnz(l) > 0).unwrap_or(preferred)
                }
            };
            match plan.kind {
                FaultKind::StreamTruncation | FaultKind::StreamCorruption => {
                    let tokens = ctx.ac.channel_nnz(site) as u64;
                    if tokens > 0 {
                        stream_fault = Some(StreamInjector {
                            lane: site,
                            target: plan.ordinal % tokens,
                            seen: 0,
                            truncate: plan.kind == FaultKind::StreamTruncation,
                            corrupt_to: (ctx.bc.rows() as u32)
                                .saturating_add(1 + (plan.ordinal % 97) as u32),
                        });
                    }
                }
                FaultKind::QueueOverflowForce => {
                    lanes[site].pe.fault_force_overflow_after = Some(plan.ordinal % 32);
                    lanes[site].pe.cpu_fallback = false;
                }
                FaultKind::DroppedWrite => {
                    lanes[site].writer.fault_drop_append = Some(plan.ordinal % 64);
                }
                FaultKind::ChannelStall | FaultKind::BurstRefusal => {}
            }
        }

        let (watchdog, lane_sources, hbm_source) = self.build_watchdog();
        RunState {
            t: 0,
            next_id: 0,
            route: BTreeMap::new(),
            lanes,
            hbm,
            stream_fault,
            watchdog,
            lane_sources,
            hbm_source,
        }
    }

    /// Serializes the machine at the top of cycle `state.t`, fingerprinted
    /// against this accelerator's configuration and the run's operands.
    fn snapshot_run(&self, ctx: &RunContext<'_>, state: &RunState) -> Checkpoint {
        let (wd_last, wd_states) = state.watchdog.export_state();
        Checkpoint {
            state: CheckpointState {
                cfg_fingerprint: fingerprint_config(&self.cfg),
                a_fingerprint: fingerprint_matrix(ctx.a),
                b_fingerprint: fingerprint_matrix(ctx.b),
                t: state.t,
                next_id: state.next_id,
                route: state.route.iter().map(|(&id, &l)| (id, l as u64)).collect(),
                lanes: state
                    .lanes
                    .iter()
                    .map(|lane| LaneState {
                        spal: lane.spal.snapshot(),
                        spbl: lane.spbl.snapshot(),
                        pe: lane.pe.snapshot(),
                        writer: lane.writer.snapshot(),
                        spal_out: lane.spal_out.iter().copied().collect(),
                        pe_in: lane.pe_in.iter().copied().collect(),
                    })
                    .collect(),
                stream_fault: state.stream_fault.as_ref().map(|inj| StreamFaultState {
                    lane: inj.lane as u64,
                    target: inj.target,
                    seen: inj.seen,
                    truncate: inj.truncate,
                    corrupt_to: inj.corrupt_to,
                }),
                hbm: state.hbm.snapshot(),
                wd_last_progress: wd_last.as_u64(),
                wd_sources: wd_states
                    .iter()
                    .map(|s| WdSourceState {
                        last_signature: s.last_signature,
                        last_progress: s.last_progress.as_u64(),
                        observed: s.observed,
                    })
                    .collect(),
            },
        }
    }

    /// Rebuilds a [`RunState`] from a checkpoint, verifying that it was
    /// taken by a run of the same configuration over the same operands.
    fn restore_run(
        &self,
        ctx: &RunContext<'_>,
        checkpoint: &Checkpoint,
    ) -> Result<RunState, SimError> {
        let cfg = &self.cfg;
        let st = &checkpoint.state;
        if st.cfg_fingerprint != fingerprint_config(cfg) {
            return Err(SimError::CheckpointMismatch {
                detail: "configuration differs from the checkpointed run",
            });
        }
        if st.a_fingerprint != fingerprint_matrix(ctx.a) {
            return Err(SimError::CheckpointMismatch {
                detail: "matrix A differs from the checkpointed run",
            });
        }
        if st.b_fingerprint != fingerprint_matrix(ctx.b) {
            return Err(SimError::CheckpointMismatch {
                detail: "matrix B differs from the checkpointed run",
            });
        }
        let lanes_n = cfg.num_lanes;
        if st.lanes.len() != lanes_n
            || st.wd_sources.len() != lanes_n + 1
            || st.hbm.channels.len() != cfg.mem.num_channels
        {
            return Err(SimError::CheckpointMismatch {
                detail: "checkpoint shape disagrees with the configuration",
            });
        }

        let hbm = Hbm::restore(cfg.mem.clone(), &st.hbm);
        let mut lanes: Vec<Lane> = (0..lanes_n)
            .map(|l| Lane {
                spal: SpAl::new(l, cfg, &ctx.ac),
                spbl: SpBl::new(cfg),
                pe: Pe::new(cfg),
                writer: Writer::new(l, cfg, ctx.c_layout.data_base),
                spal_out: VecDeque::new(),
                pe_in: VecDeque::new(),
            })
            .collect();
        for (lane, ls) in lanes.iter_mut().zip(&st.lanes) {
            lane.spal.restore(&ls.spal);
            lane.spbl.restore(&ls.spbl);
            lane.pe.restore(&ls.pe);
            lane.writer.restore(&ls.writer);
            lane.spal_out = ls.spal_out.iter().copied().collect();
            lane.pe_in = ls.pe_in.iter().copied().collect();
        }

        let (mut watchdog, lane_sources, hbm_source) = self.build_watchdog();
        let sources: Vec<SourceState> = st
            .wd_sources
            .iter()
            .map(|s| SourceState {
                last_signature: s.last_signature,
                last_progress: Cycle(s.last_progress),
                observed: s.observed,
            })
            .collect();
        watchdog.import_state(Cycle(st.wd_last_progress), &sources);

        let stream_fault = st.stream_fault.map(|s| StreamInjector {
            lane: s.lane as usize,
            target: s.target,
            seen: s.seen,
            truncate: s.truncate,
            corrupt_to: s.corrupt_to,
        });

        Ok(RunState {
            t: st.t,
            next_id: st.next_id,
            route: st.route.iter().map(|&(id, l)| (id, l as usize)).collect(),
            lanes,
            hbm,
            stream_fault,
            watchdog,
            lane_sources,
            hbm_source,
        })
    }

    /// Advances the machine cycle by cycle until it drains (`Ok(true)`),
    /// pauses at `pause_at` (`Ok(false)`), or fails.
    ///
    /// The pause point is the **top** of a cycle, before any component has
    /// ticked — the one point where no cross-component state (delivered
    /// responses) is in flight, which is what makes snapshots exact.
    fn drive(
        &self,
        ctx: &RunContext<'_>,
        state: &mut RunState,
        pause_at: Option<u64>,
    ) -> Result<bool, SimError> {
        self.drive_observed(ctx, state, pause_at, None)
    }

    /// [`drive`](Accelerator::drive) with an optional trace sampler.
    ///
    /// Every untraced entry point passes `None`, and the sampler is purely
    /// observational (it reads counters, never machine state), so the
    /// traced and untraced machines tick bit-identically — the
    /// zero-overhead-when-disabled contract of the observability layer.
    fn drive_observed(
        &self,
        ctx: &RunContext<'_>,
        state: &mut RunState,
        pause_at: Option<u64>,
        mut sampler: Option<&mut TraceSampler>,
    ) -> Result<bool, SimError> {
        let cfg = &self.cfg;
        let lanes_n = cfg.num_lanes;
        let ratio = ctx.ratio;
        let fallback = |row: u32| reference_row(ctx.a, ctx.b, row as usize);
        let mut inboxes: Vec<Vec<u64>> = vec![Vec::new(); lanes_n];

        let RunState {
            t,
            next_id,
            route,
            lanes,
            hbm,
            stream_fault,
            watchdog,
            lane_sources,
            hbm_source,
        } = state;

        loop {
            if pause_at.is_some_and(|k| *t >= k) {
                return Ok(false);
            }
            let mem_now = Cycle(*t / ratio);
            if t.is_multiple_of(ratio) {
                hbm.tick(mem_now);
                while let Some(resp) = hbm.pop_response(mem_now) {
                    // Every in-flight response id was recorded in `route`
                    // when issued; a miss means the interconnect model (or
                    // injected memory corruption) fabricated a response.
                    // Propagate it instead of panicking so services above
                    // the driver survive the broken run.
                    let Some(lane) = route.remove(&resp.id.0) else {
                        return Err(SimError::ProtocolViolation {
                            detail: "HBM response for an unissued request id",
                        });
                    };
                    inboxes[lane].push(resp.id.0);
                }
                if let Some(s) = sampler.as_deref_mut() {
                    s.record_queue_depths(&hbm.queue_depths());
                }
            }

            let mut all_done = true;
            for (l, lane) in lanes.iter_mut().enumerate() {
                // Deliver responses.
                for id in inboxes[l].drain(..) {
                    if lane.spal.on_response(id, &ctx.ac) {
                        continue;
                    }
                    if lane.spbl.on_response(id) {
                        continue;
                    }
                    let consumed = lane.writer.on_response(id);
                    debug_assert!(consumed, "orphan response {id}");
                }

                let mut port = MemPort { hbm, mem_now, next_id, route, lane: l };

                let upstream_done =
                    lane.spal.is_done() && lane.spbl.is_done() && lane.spal_out.is_empty();
                lane.pe.tick(
                    &mut lane.pe_in,
                    &mut lane.writer,
                    cfg,
                    &ctx.c_layout,
                    &fallback,
                    upstream_done,
                );
                lane.spbl.tick(
                    &mut port,
                    cfg,
                    &ctx.b_layout,
                    &ctx.bc,
                    &mut lane.spal_out,
                    &mut lane.pe_in,
                    cfg.coupling_fifo_depth,
                    lane.spal.is_done(),
                );
                let fifo_len_before = lane.spal_out.len();
                lane.spal.tick(
                    &mut port,
                    cfg,
                    &ctx.a_layout,
                    &ctx.ac,
                    &mut lane.spal_out,
                    cfg.coupling_fifo_depth,
                );
                if let Some(inj) = stream_fault.as_mut() {
                    inj.inspect(l, lane.spal_out.len() > fifo_len_before, &mut lane.spal_out);
                }
                lane.writer.tick(&mut port);

                if let Some((col, bound)) = lane.spbl.malformed_input() {
                    return Err(SimError::MalformedInput(MalformedInput::ColumnOutOfRange {
                        lane: l,
                        col,
                        bound,
                    }));
                }
                if let Some(row) = lane.pe.fatal_overflow {
                    return Err(SimError::QueueOverflow { lane: l, row });
                }

                let lane_done = lane.spal.is_done()
                    && lane.spbl.is_done()
                    && lane.spal_out.is_empty()
                    && lane.pe_in.is_empty()
                    && lane.pe.is_done(lane.pe_in.is_empty())
                    && lane.writer.is_done();
                all_done &= lane_done;
            }

            if std::env::var_os("MATRAPTOR_DEBUG").is_some() && t.is_multiple_of(100_000) {
                let l0 = &lanes[0];
                eprintln!(
                    "t={t} hbm_inflight={} spal={:?} spbl={:?} spal_out={} pe_in={}",
                    hbm.in_flight(),
                    l0.spal.debug_state(),
                    l0.spbl.debug_state(),
                    l0.spal_out.len(),
                    l0.pe_in.len()
                );
                let ch: Vec<String> = hbm
                    .channel_stats()
                    .iter()
                    .map(|c| {
                        format!("{:.2}", c.busy_cycles.get() as f64 / ((*t).max(1) / ratio) as f64)
                    })
                    .collect();
                eprintln!(
                    "  spbl blocked [data, info, staging_full, no_jobs] = {:?}; mean mem latency = {:.1}; ch busy = {:?}",
                    l0.spbl.blocked,
                    hbm.stats().mean_latency(),
                    ch
                );
            }
            if all_done && hbm.is_idle() && inboxes.iter().all(Vec::is_empty) {
                break;
            }

            if watchdog.window() > 0 && t.is_multiple_of(WATCHDOG_STRIDE) {
                for (l, lane) in lanes.iter().enumerate() {
                    let mut sig = mix_signature(0, lane.spal.progress_signature());
                    sig = mix_signature(sig, lane.spbl.progress_signature());
                    sig = mix_signature(sig, lane.pe.progress_signature());
                    sig = mix_signature(sig, lane.writer.progress_signature());
                    sig = mix_signature(sig, lane.spal_out.len() as u64);
                    sig = mix_signature(sig, lane.pe_in.len() as u64);
                    watchdog.observe(lane_sources[l], Cycle(*t), sig);
                }
                // The HBM's signature must only move when it *services*
                // something: queue depths, in-flight count, and per-channel
                // busy counters. Fault counters are deliberately excluded —
                // a stalled channel accumulating stall ticks is not
                // progress.
                let mut sig = mix_signature(0, hbm.in_flight() as u64);
                for depth in hbm.queue_depths() {
                    sig = mix_signature(sig, depth as u64);
                }
                for ch in hbm.channel_stats() {
                    sig = mix_signature(sig, ch.busy_cycles.get());
                }
                watchdog.observe(*hbm_source, Cycle(*t), sig);
                if let Some(report) = watchdog.check(Cycle(*t)) {
                    return Err(SimError::Deadlock(deadlock_diagnostic(&report, lanes, hbm)));
                }
            }

            if let Some(s) = sampler.as_deref_mut() {
                if (*t + 1).is_multiple_of(s.window()) {
                    let attrs: Vec<LaneAttribution> = lanes.iter().map(Lane::attribution).collect();
                    s.close_window(*t + 1, &hbm.channel_stats(), &attrs);
                }
            }

            *t += 1;
            if *t >= ctx.budget {
                return Err(SimError::CycleBudgetExceeded { budget: ctx.budget, cycles: *t });
            }
        }
        Ok(true)
    }

    /// Assembles the functional output and statistics of a drained run,
    /// applying the configured output-integrity checks.
    fn finalize(&self, ctx: &RunContext<'_>, state: &RunState) -> Result<RunOutcome, SimError> {
        let cfg = &self.cfg;
        let lanes_n = cfg.num_lanes;
        let lanes = &state.lanes;

        // Assemble the functional output in C²SR, per-lane row order. The
        // lane count was validated positive at construction, so a refusal
        // here is a protocol violation, not an input problem.
        let mut c2sr = C2sr::new_for_output(ctx.a.rows(), ctx.b.cols(), lanes_n).map_err(|_| {
            SimError::ProtocolViolation { detail: "output C2SR rejected the validated lane count" }
        })?;
        for lane in lanes {
            for row in &lane.writer.finished {
                c2sr.append_row(row.row as usize, &row.cols, &row.vals);
            }
        }
        if c2sr.validate().is_err() {
            return Err(SimError::OutputCorrupted {
                detail: "output violates C2SR invariants",
                rows: Vec::new(),
            });
        }
        let c = c2sr.to_csr();

        // ABFT first: O(nnz) row checksums localise the damage. The full
        // Gustavson cross-check (when enabled) stays as the belt-and-
        // braces oracle behind it.
        if cfg.abft_verification {
            let report = abft::verify(ctx.a, ctx.b, &c, &abft::AbftOptions::default());
            if !report.is_ok() {
                return Err(SimError::OutputCorrupted {
                    detail: "output fails ABFT row-checksum verification",
                    rows: report.offending_rows(),
                });
            }
        }

        if cfg.verify_against_reference {
            let reference = spgemm::gustavson(ctx.a, ctx.b);
            if !c.approx_eq(&reference, 1e-6) {
                return Err(SimError::OutputCorrupted {
                    detail: "output diverges from the Gustavson reference",
                    rows: Vec::new(),
                });
            }
        }

        // Aggregate statistics.
        let mut breakdown = CycleBreakdown::default();
        let mut per_pe_breakdown = Vec::with_capacity(lanes_n);
        let mut multiplies = 0u64;
        let mut additions = 0u64;
        let mut overflow_rows = 0usize;
        let mut overflow_padding = 0u64;
        let mut phase1 = 0u64;
        let mut phase2 = 0u64;
        let mut per_lane_attribution = Vec::with_capacity(lanes_n);
        for lane in lanes {
            let b = lane.pe.breakdown();
            breakdown.merge_from(&b);
            per_pe_breakdown.push(b);
            multiplies += lane.pe.multiplies.get();
            additions += lane.pe.additions.get();
            overflow_rows += lane.pe.overflow_rows.len();
            overflow_padding += lane.writer.finished.iter().map(|r| r.padded_entries).sum::<u64>();
            phase1 += lane.pe.phase1_cycles.get();
            phase2 += lane.pe.phase2_cycles.get();
            per_lane_attribution.push(lane.attribution());
        }
        let mem_stats = state.hbm.stats();
        let per_pe_nnz = (0..lanes_n).map(|l| ctx.ac.channel_nnz(l) as u64).collect();

        Ok(RunOutcome {
            c,
            c2sr,
            stats: MatRaptorStats {
                total_cycles: state.t + 1,
                clock_ghz: cfg.clock_ghz,
                breakdown,
                per_pe_breakdown,
                multiplies,
                additions,
                bytes_read: mem_stats.bytes_read,
                bytes_written: mem_stats.bytes_written,
                traffic_read: mem_stats.traffic_read,
                traffic_written: mem_stats.traffic_written,
                per_pe_nnz,
                overflow_rows,
                overflow_padding_entries: overflow_padding,
                phase1_cycles: phase1,
                phase2_cycles: phase2,
                per_lane_attribution,
            },
        })
    }
}

/// Builds the structured deadlock payload from the watchdog's report plus
/// the machine state at the moment the wedge was declared.
fn deadlock_diagnostic(report: &WatchdogReport, lanes: &[Lane], hbm: &Hbm) -> DeadlockDiagnostic {
    let lane_diags = lanes
        .iter()
        .enumerate()
        .map(|(l, lane)| {
            let (spal_in_flight, spal_staging, spal_rows_remaining) = lane.spal.occupancy();
            let (spbl_jobs, spbl_in_flight, spbl_staging) = lane.spbl.occupancy();
            let (writer_queued, writer_pending) = lane.writer.occupancy();
            LaneDiagnostic {
                lane: l,
                last_progress: report.sources.get(l).map_or(0, |s| s.last_progress.as_u64()),
                spal_in_flight,
                spal_staging,
                spal_rows_remaining,
                spbl_jobs,
                spbl_in_flight,
                spbl_staging,
                coupling_a_tokens: lane.spal_out.len(),
                coupling_products: lane.pe_in.len(),
                pe_active: lane.pe.is_active(),
                writer_queued,
                writer_pending,
            }
        })
        .collect();
    let channels = hbm
        .queue_depths()
        .into_iter()
        .enumerate()
        .map(|(channel, queue_depth)| ChannelDiagnostic { channel, queue_depth })
        .collect();
    DeadlockDiagnostic {
        declared_at: report.declared_at.as_u64(),
        window: report.window,
        last_progress: report.last_progress.as_u64(),
        lanes: lane_diags,
        channels,
    }
}

/// Software computation of one output row — the CPU-fallback path for
/// sorting-queue overflows (Section VII).
fn reference_row(a: &Csr<f64>, b: &Csr<f64>, i: usize) -> (Vec<u32>, Vec<f64>) {
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for (k, av) in a.row(i) {
        for (j, bv) in b.row(k as usize) {
            *acc.entry(j).or_insert(0.0) += av * bv;
        }
    }
    acc.into_iter().filter(|&(_, v)| v != 0.0).unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matraptor_sparse::gen;

    #[test]
    fn tiny_identity_product() {
        let eye = Csr::<f64>::identity(8);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&eye, &eye);
        assert_eq!(outcome.c, eye);
        assert_eq!(outcome.stats.overflow_rows, 0);
    }

    #[test]
    fn paper_fig2_matrix_squared() {
        // The 4x4 example matrix of Fig. 2/3.
        let mut coo = matraptor_sparse::Coo::new(4, 4);
        for &(r, c, v) in &[
            (0u32, 0u32, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 3, 4.0),
            (2, 1, 5.0),
            (3, 1, 6.0),
            (3, 2, 7.0),
        ] {
            coo.push(r, c, v);
        }
        let a = coo.compress();
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn random_product_matches_reference() {
        let a = gen::uniform(60, 60, 320, 5);
        let b = gen::uniform(60, 60, 300, 6);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &b);
        // verify_against_reference already asserts; sanity-check stats too.
        assert_eq!(outcome.stats.multiplies, spgemm::multiply_count(&a, &b));
        assert!(outcome.stats.total_cycles > 0);
        assert!(outcome.stats.bytes_read > 0);
        assert!(outcome.stats.bytes_written > 0);
    }

    #[test]
    fn empty_rows_and_columns_are_handled() {
        // Matrix with several all-zero rows.
        let a =
            Csr::from_parts(6, 6, vec![0, 2, 2, 2, 3, 3, 3], vec![1, 3, 0], vec![1.0, 2.0, 3.0])
                .expect("structurally valid CSR");
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn zero_matrix_product() {
        let z = Csr::<f64>::zero(10, 10);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&z, &z);
        assert_eq!(outcome.c.nnz(), 0);
    }

    #[test]
    fn power_law_matrix_exercises_merge_path() {
        // RMAT rows force vectors > Q-1, exercising the merge+helper path.
        let a = gen::rmat(128, 1200, gen::RmatParams::default(), 9);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &a);
        let (busy, merge, mem, _) = outcome.stats.breakdown.fractions();
        assert!(busy > 0.0);
        assert!(merge > 0.0, "merge stalls expected on power-law inputs");
        assert!(mem >= 0.0);
    }

    #[test]
    fn queue_overflow_falls_back_to_cpu() {
        // Tiny queues + a dense-ish matrix forces overflow; the result
        // must still be correct and overflows reported.
        let cfg = MatRaptorConfig {
            queue_bytes: 64, // 8 entries per queue
            ..MatRaptorConfig::small_test()
        };
        let a = gen::uniform(32, 32, 512, 11);
        let outcome = Accelerator::new(cfg).run(&a, &a);
        assert!(outcome.stats.overflow_rows > 0, "expected overflows with 8-entry queues");
        assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &a), 1e-6));
    }

    #[test]
    fn default_config_eight_lanes() {
        let a = gen::uniform(64, 64, 400, 12);
        let outcome = Accelerator::new(MatRaptorConfig::default()).run(&a, &a);
        assert_eq!(outcome.stats.per_pe_nnz.len(), 8);
        assert!(outcome.stats.load_imbalance() >= 1.0);
    }

    #[test]
    fn rectangular_product() {
        let a = gen::uniform(40, 60, 250, 13);
        let b = gen::uniform(60, 30, 260, 14);
        let outcome = Accelerator::new(MatRaptorConfig::small_test()).run(&a, &b);
        assert_eq!((outcome.c.rows(), outcome.c.cols()), (40, 30));
    }

    #[test]
    fn checkpoint_before_completion_resumes_to_identical_outcome() {
        let a = gen::uniform(48, 48, 300, 21);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let full = accel.try_run(&a, &a).expect("clean run");
        let ck = accel
            .try_run_to_checkpoint(&a, &a, None, 64)
            .expect("checkpointing run")
            .expect("run longer than 64 cycles");
        assert_eq!(ck.cycle(), 64);
        let resumed = accel.try_run_from(&a, &a, &ck).expect("resume");
        assert_eq!(resumed.stats.total_cycles, full.stats.total_cycles);
        assert_eq!(resumed.c, full.c);
    }

    #[test]
    fn checkpoint_after_completion_is_none() {
        let eye = Csr::<f64>::identity(8);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let ck = accel.try_run_to_checkpoint(&eye, &eye, None, u64::MAX).expect("run");
        assert!(ck.is_none(), "run should drain before u64::MAX cycles");
    }

    #[test]
    fn deadline_run_cancels_at_the_deadline_and_is_resumable() {
        let a = gen::uniform(48, 48, 300, 21);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let full = accel.try_run(&a, &a).expect("clean run");
        match accel.try_run_deadline(&a, &a, None, 64).expect("bounded run") {
            DeadlineRun::Cancelled(ck) => {
                assert_eq!(ck.cycle(), 64, "cancellation is exact: the deadline cycle");
                // Cancelled work is a checkpoint — resuming it finishes
                // the run bit-identically to the unbounded machine.
                let resumed = accel.try_run_from(&a, &a, &ck).expect("resume");
                assert_eq!(resumed.stats.total_cycles, full.stats.total_cycles);
                assert_eq!(resumed.c, full.c);
            }
            DeadlineRun::Completed(_) => panic!("48x48 product cannot drain in 64 cycles"),
        }
        match accel.try_run_deadline(&a, &a, None, u64::MAX).expect("bounded run") {
            DeadlineRun::Completed(outcome) => {
                assert_eq!(outcome.stats.total_cycles, full.stats.total_cycles);
            }
            DeadlineRun::Cancelled(_) => panic!("run should drain before u64::MAX"),
        }
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let a = gen::uniform(48, 48, 300, 22);
        let other = gen::uniform(48, 48, 300, 23);
        let accel = Accelerator::new(MatRaptorConfig::small_test());
        let ck = accel
            .try_run_to_checkpoint(&a, &a, None, 64)
            .expect("checkpointing run")
            .expect("checkpoint");
        match accel.try_run_from(&other, &other, &ck) {
            Err(SimError::CheckpointMismatch { .. }) => {}
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
    }
}
