//! Sparse Matrix A Loader (SpAL).

use std::collections::{BTreeMap, VecDeque};

use matraptor_sim::trace::{StageBreakdown, StageClass};
use matraptor_sim::watchdog::mix_signature;
use matraptor_sparse::C2sr;

use crate::checkpoint::{SpAlSpanState, SpAlState};
use crate::config::MatRaptorConfig;
use crate::layout::{MatrixLayout, INFO_BYTES};
use crate::port::MemPort;
use crate::tokens::ATok;

/// The per-lane loader for matrix A (Section IV-B).
///
/// SpAL owns the rows of A that C²SR assigned to its lane's channel
/// (`row ≡ lane (mod lanes)`). For each row it first fetches the *(row
/// length, row pointer)* pair, then streams the row's `(value, col id)`
/// data with wide vectorized reads sized to the channel interleaving, and
/// forwards `(a_ik, i, k)` tuples downstream. Outstanding-request queues
/// let it pipeline fetches instead of stalling on each response.
#[derive(Debug)]
pub struct SpAl {
    // conformance:allow(checkpoint-coverage): lane identity is structural; restore rebuilds the loader in place for the same lane
    lane: usize,
    // conformance:allow(checkpoint-coverage): row assignment is derived from (lane, layout) at construction, identical across a restore of the same job
    rows: Vec<u32>,
    /// Next row whose info fetch may be issued.
    info_cursor: usize,
    /// Next row whose data fetches may be issued (gated on its info).
    data_cursor: usize,
    /// Rows whose info response has arrived.
    info_ready: Vec<bool>,
    /// Planned data requests for the row currently being issued.
    current_plan: VecDeque<(u64, u32)>,
    /// Entry cursor within the current row (for decode bookkeeping).
    entries_issued: u32,
    pending_info: BTreeMap<u64, usize>,
    pending_data: BTreeMap<u64, DataSpan>,
    /// Decoded tokens awaiting the downstream FIFO.
    staging: VecDeque<ATok>,
    /// In-flight request budget.
    in_flight: usize,
    // conformance:allow(checkpoint-coverage): fixed hardware constant from config, never mutated after construction
    max_outstanding: usize,
    /// Cap on decoded-but-unforwarded tokens, bounding lookahead.
    // conformance:allow(checkpoint-coverage): fixed hardware constant from config, never mutated after construction
    staging_cap: usize,
    /// Per-cycle attribution: exactly one bucket is charged per tick, so
    /// the buckets sum to the cycles this unit was ticked.
    attribution: StageBreakdown,
}

/// Which entries of which row a data response carries.
#[derive(Debug, Clone, Copy)]
struct DataSpan {
    row_pos: usize,
    first_entry: u32,
    count: u32,
}

impl SpAl {
    /// Builds the loader for `lane`, taking the global row → lane
    /// round-robin assignment from the C²SR matrix itself.
    pub(crate) fn new(lane: usize, cfg: &MatRaptorConfig, a: &C2sr<f64>) -> Self {
        let rows: Vec<u32> = (lane..a.rows()).step_by(cfg.num_lanes).map(|r| r as u32).collect();
        let n = rows.len();
        SpAl {
            lane,
            rows,
            info_cursor: 0,
            data_cursor: 0,
            info_ready: vec![false; n],
            current_plan: VecDeque::new(),
            entries_issued: 0,
            pending_info: BTreeMap::new(),
            pending_data: BTreeMap::new(),
            staging: VecDeque::new(),
            in_flight: 0,
            max_outstanding: cfg.outstanding_requests,
            // Keep decode-ahead shallow: SpAL's own channel also serves
            // latency-critical B reads from every other lane, so running
            // hundreds of rows ahead only inflates queueing delay.
            staging_cap: 2 * cfg.coupling_fifo_depth,
            attribution: StageBreakdown::default(),
        }
    }

    /// Handles a memory response routed to this unit. Returns `true` if
    /// the id belonged to SpAL.
    pub(crate) fn on_response(&mut self, id: u64, a: &C2sr<f64>) -> bool {
        if let Some(row_pos) = self.pending_info.remove(&id) {
            self.info_ready[row_pos] = true;
            self.in_flight -= 1;
            return true;
        }
        if let Some(span) = self.pending_data.remove(&id) {
            self.in_flight -= 1;
            let row = self.rows[span.row_pos] as usize;
            let (cols, vals) = a.row_slices(row);
            let len = cols.len() as u32;
            for e in span.first_entry..span.first_entry + span.count {
                self.staging.push_back(ATok::Entry {
                    val: vals[e as usize],
                    row: row as u32,
                    col: cols[e as usize],
                    last_in_row: e + 1 == len,
                });
            }
            return true;
        }
        false
    }

    /// One accelerator cycle: issue requests (info prefetch + data
    /// streaming) and forward at most one token downstream.
    pub(crate) fn tick(
        &mut self,
        port: &mut MemPort<'_>,
        cfg: &MatRaptorConfig,
        layout: &MatrixLayout,
        a: &C2sr<f64>,
        out: &mut VecDeque<ATok>,
        out_cap: usize,
    ) {
        // Attribution bookkeeping only — `moved` never gates behaviour, so
        // the traced and untraced dynamics are identical by construction.
        let mut moved = false;

        // Forward one decoded token per cycle.
        if out.len() < out_cap {
            if let Some(tok) = self.staging.pop_front() {
                out.push_back(tok);
                moved = true;
            }
        }

        if self.staging.len() >= self.staging_cap {
            // downstream backpressure: stop fetching ahead
            self.attribution.charge(if moved { StageClass::Busy } else { StageClass::QueueStall });
            return;
        }

        // Prefetch row infos (up to a short lookahead window).
        while self.info_cursor < self.rows.len()
            && self.info_cursor < self.data_cursor + 32
            && self.in_flight < self.max_outstanding
        {
            let row = self.rows[self.info_cursor] as usize;
            let addr = layout.info_addr(row);
            match port.try_read(addr, INFO_BYTES) {
                Some(id) => {
                    self.pending_info.insert(id, self.info_cursor);
                    self.in_flight += 1;
                    self.info_cursor += 1;
                    moved = true;
                }
                None => break,
            }
        }

        // Stream data for the current row once its info has landed.
        loop {
            if self.current_plan.is_empty() {
                // Advance to the next row that has info.
                if self.data_cursor >= self.rows.len() {
                    break;
                }
                if !self.info_ready[self.data_cursor] {
                    break;
                }
                let row = self.rows[self.data_cursor] as usize;
                let info = a.row_info(row);
                if info.len == 0 {
                    // Empty A row: emit the marker so the output row (also
                    // empty) still gets written. Gate on drained data
                    // responses — staging must stay in row order, and
                    // in-flight data belongs to earlier rows.
                    if !self.pending_data.is_empty() {
                        break;
                    }
                    self.staging.push_back(ATok::EmptyRow { row: row as u32 });
                    self.data_cursor += 1;
                    moved = true;
                    continue;
                }
                self.current_plan = layout
                    .row_data_requests(&cfg.mem, self.lane, info, cfg.read_request_bytes)
                    .into();
                self.entries_issued = 0;
            }
            // Issue as many of the planned reads as the budget allows.
            let mut progressed = false;
            while let Some(&(addr, bytes)) = self.current_plan.front() {
                if self.in_flight >= self.max_outstanding {
                    break;
                }
                match port.try_read(addr, bytes) {
                    Some(id) => {
                        let count = bytes as u64 / layout.entry_bytes;
                        self.pending_data.insert(
                            id,
                            DataSpan {
                                row_pos: self.data_cursor,
                                first_entry: self.entries_issued,
                                count: count as u32,
                            },
                        );
                        self.entries_issued += count as u32;
                        self.in_flight += 1;
                        self.current_plan.pop_front();
                        progressed = true;
                    }
                    None => break,
                }
            }
            if progressed {
                moved = true;
            }
            if self.current_plan.is_empty() && progressed {
                self.data_cursor += 1;
                continue;
            }
            break;
        }

        // Classify the cycle. Priority: any token or request movement is
        // Busy; a finished unit is Idle; a unit that only failed to
        // forward because the downstream FIFO is full is queue-stalled;
        // everything else (responses in flight, refused requests) is
        // memory-stalled.
        self.attribution.charge(if moved {
            StageClass::Busy
        } else if self.is_done() {
            StageClass::Idle
        } else if !self.staging.is_empty() && out.len() >= out_cap {
            StageClass::QueueStall
        } else {
            StageClass::MemStall
        });
    }

    /// Per-cycle busy/stall attribution for this unit.
    pub(crate) fn attribution(&self) -> &StageBreakdown {
        &self.attribution
    }

    /// Whether every assigned row has been fetched and forwarded.
    pub(crate) fn is_done(&self) -> bool {
        self.data_cursor >= self.rows.len() && self.in_flight == 0 && self.staging.is_empty()
    }

    /// Rows of A assigned to this lane (for the Fig. 11 load-imbalance
    /// study).
    pub fn assigned_rows(&self) -> &[u32] {
        &self.rows
    }

    /// Forward-progress signature for the watchdog: folds every cursor
    /// and occupancy that changes when this unit moves a token or a
    /// request. Deliberately excludes anything that advances while the
    /// unit is merely waiting.
    pub(crate) fn progress_signature(&self) -> u64 {
        let mut sig = mix_signature(0, self.info_cursor as u64);
        sig = mix_signature(sig, self.data_cursor as u64);
        sig = mix_signature(sig, self.in_flight as u64);
        sig = mix_signature(sig, self.staging.len() as u64);
        sig = mix_signature(sig, self.pending_info.len() as u64);
        sig = mix_signature(sig, self.pending_data.len() as u64);
        sig = mix_signature(sig, self.current_plan.len() as u64);
        mix_signature(sig, self.entries_issued as u64)
    }

    /// Occupancy snapshot for deadlock diagnostics:
    /// `(in_flight, staging, rows_remaining)`.
    pub(crate) fn occupancy(&self) -> (usize, usize, usize) {
        (self.in_flight, self.staging.len(), self.rows.len().saturating_sub(self.data_cursor))
    }

    #[doc(hidden)]
    pub fn debug_state(&self) -> (usize, usize, usize, usize) {
        (self.in_flight, self.staging.len(), self.data_cursor, self.info_cursor)
    }

    /// Captures all mutable state for a checkpoint. The lane index, row
    /// assignment, and budgets are rebuilt by [`SpAl::new`] on restore.
    pub(crate) fn snapshot(&self) -> SpAlState {
        SpAlState {
            info_cursor: self.info_cursor as u64,
            data_cursor: self.data_cursor as u64,
            info_ready: self.info_ready.clone(),
            current_plan: self.current_plan.iter().copied().collect(),
            entries_issued: self.entries_issued,
            pending_info: self.pending_info.iter().map(|(&id, &pos)| (id, pos as u64)).collect(),
            pending_data: self
                .pending_data
                .iter()
                .map(|(&id, span)| {
                    (
                        id,
                        SpAlSpanState {
                            row_pos: span.row_pos as u64,
                            first_entry: span.first_entry,
                            count: span.count,
                        },
                    )
                })
                .collect(),
            staging: self.staging.iter().copied().collect(),
            in_flight: self.in_flight as u64,
            attribution: self.attribution.as_array(),
        }
    }

    /// Restores a snapshot into a freshly constructed loader for the same
    /// `(lane, config, matrix)` triple.
    pub(crate) fn restore(&mut self, state: &SpAlState) {
        assert_eq!(
            self.info_ready.len(),
            state.info_ready.len(),
            "SpAL restore: assigned-row count mismatch"
        );
        self.info_cursor = state.info_cursor as usize;
        self.data_cursor = state.data_cursor as usize;
        self.info_ready = state.info_ready.clone();
        self.current_plan = state.current_plan.iter().copied().collect();
        self.entries_issued = state.entries_issued;
        self.pending_info =
            state.pending_info.iter().map(|&(id, pos)| (id, pos as usize)).collect();
        self.pending_data = state
            .pending_data
            .iter()
            .map(|(id, span)| {
                (
                    *id,
                    DataSpan {
                        row_pos: span.row_pos as usize,
                        first_entry: span.first_entry,
                        count: span.count,
                    },
                )
            })
            .collect();
        self.staging = state.staging.iter().copied().collect();
        self.in_flight = state.in_flight as usize;
        self.attribution = StageBreakdown::from_array(state.attribution);
    }
}
