//! The MatRaptor accelerator model.
//!
//! This crate implements the micro-architecture of Section IV of the paper
//! as a functional *and* cycle-level simulation:
//!
//! * [`SpAl`] — the Sparse Matrix A Loader: streams the rows of *A*
//!   assigned to its lane from its HBM channel (C²SR guarantees the
//!   assignment), forwarding `(a_ik, i, k)` tuples;
//! * [`SpBl`] — the Sparse Matrix B Loader: for each `a_ik`, fetches row
//!   *k* of *B* and forwards `(a_ik · b_kj, i, j)` products;
//! * [`Pe`] — the processing element: one multiplier plus **two sets of Q
//!   sorting queues** implementing the merge of Section IV-A, with Phase I
//!   (merge-on-insert) and Phase II (min-column-id selection + adder tree)
//!   double-buffered so they overlap (Fig. 5b);
//! * a per-lane output writer that appends finished C rows to the lane's
//!   channel in C²SR — no inter-PE synchronisation, the point of the
//!   format;
//! * [`Accelerator`] — the top level: a one-dimensional systolic
//!   arrangement of `N` lanes (SpAL → SpBL → PE) over a shared [`Hbm`],
//!   with round-robin row scheduling.
//!
//! Every run returns both the computed matrix (checked against the
//! Gustavson reference in tests) and a [`MatRaptorStats`] with the
//! busy/merge/memory cycle breakdown (Fig. 9), memory traffic, and
//! achieved throughput (Fig. 7).
//!
//! # Robustness
//!
//! Beyond the happy path, the crate models *faulty* runs:
//!
//! * [`Accelerator::try_run`] is the fallible end-to-end entry point — it
//!   returns [`SimError`] instead of panicking or hanging, with a
//!   structured [`DeadlockDiagnostic`] when the watchdog declares a wedge;
//! * [`FaultPlan`] describes a deterministic, seeded fault injection
//!   (channel stalls, corrupted or truncated C²SR streams, forced
//!   sorting-queue overflow, dropped writer appends) compiled onto the
//!   machine by [`Accelerator::try_run_with_faults`];
//! * [`classify`] maps a faulty run's result to a campaign [`Verdict`]
//!   (survived / detected / escaped);
//! * [`Accelerator::try_run_to_checkpoint`] captures the full machine
//!   state in a versioned, checksummed [`Checkpoint`] that
//!   [`Accelerator::try_run_from`] resumes with **bit-identical** cycle
//!   counts and output values (DESIGN.md §9);
//! * with `abft_verification` enabled, every finished run is self-checked
//!   with ABFT row checksums + Freivalds probes
//!   ([`matraptor_sparse::abft`]), so silent output corruption surfaces
//!   as [`SimError::OutputCorrupted`] with the offending rows;
//! * [`Driver::launch_with_recovery`] walks a [`RecoveryPolicy`] ladder —
//!   resume-from-checkpoint for transient faults, reduced-lane retries,
//!   CPU fallback — and reports the full attempt trail.
//!
//! [`Hbm`]: matraptor_mem::Hbm
//! [`Accelerator::try_run`]: accel::Accelerator::try_run
//! [`Accelerator::try_run_with_faults`]: accel::Accelerator::try_run_with_faults
//! [`Accelerator::try_run_to_checkpoint`]: accel::Accelerator::try_run_to_checkpoint
//! [`Accelerator::try_run_from`]: accel::Accelerator::try_run_from

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accel;
mod checkpoint;
mod config;
mod convert;
mod driver;
mod error;
mod fault;
mod layout;
mod pe;
mod port;
mod queue;
mod spal;
mod spbl;
mod stats;
mod tokens;
mod trace;
mod writer;

pub use accel::{Accelerator, DeadlineRun, FailedRun, RunOutcome, SliceRun};
pub use checkpoint::{fingerprint_inputs, Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use config::MatRaptorConfig;
pub use convert::{
    conversion_cycles, conversion_cycles_directed, ConversionDirection, ConversionReport,
};
pub use driver::{
    ConfigRegisters, Driver, DriverError, MtxWrite, RecoveryAction, RecoveryAttempt,
    RecoveryPolicy, RecoveryReport,
};
pub use error::{
    ChannelDiagnostic, ConfigError, DeadlockDiagnostic, LaneDiagnostic, MalformedInput, SimError,
};
pub use fault::{classify, FaultKind, FaultPlan, Verdict};
pub use pe::Pe;
pub use spal::SpAl;
pub use spbl::SpBl;
pub use stats::{LaneAttribution, MatRaptorStats};
pub use trace::{ChannelTimeline, ChannelWindow, LaneTimeline, LaneWindow, RunTrace, TraceConfig};
