//! The MatRaptor accelerator model.
//!
//! This crate implements the micro-architecture of Section IV of the paper
//! as a functional *and* cycle-level simulation:
//!
//! * [`SpAl`] — the Sparse Matrix A Loader: streams the rows of *A*
//!   assigned to its lane from its HBM channel (C²SR guarantees the
//!   assignment), forwarding `(a_ik, i, k)` tuples;
//! * [`SpBl`] — the Sparse Matrix B Loader: for each `a_ik`, fetches row
//!   *k* of *B* and forwards `(a_ik · b_kj, i, j)` products;
//! * [`Pe`] — the processing element: one multiplier plus **two sets of Q
//!   sorting queues** implementing the merge of Section IV-A, with Phase I
//!   (merge-on-insert) and Phase II (min-column-id selection + adder tree)
//!   double-buffered so they overlap (Fig. 5b);
//! * a per-lane output writer that appends finished C rows to the lane's
//!   channel in C²SR — no inter-PE synchronisation, the point of the
//!   format;
//! * [`Accelerator`] — the top level: a one-dimensional systolic
//!   arrangement of `N` lanes (SpAL → SpBL → PE) over a shared [`Hbm`],
//!   with round-robin row scheduling.
//!
//! Every run returns both the computed matrix (checked against the
//! Gustavson reference in tests) and a [`MatRaptorStats`] with the
//! busy/merge/memory cycle breakdown (Fig. 9), memory traffic, and
//! achieved throughput (Fig. 7).
//!
//! # Robustness
//!
//! Beyond the happy path, the crate models *faulty* runs:
//!
//! * [`Accelerator::try_run`] is the fallible end-to-end entry point — it
//!   returns [`SimError`] instead of panicking or hanging, with a
//!   structured [`DeadlockDiagnostic`] when the watchdog declares a wedge;
//! * [`FaultPlan`] describes a deterministic, seeded fault injection
//!   (channel stalls, corrupted or truncated C²SR streams, forced
//!   sorting-queue overflow, dropped writer appends) compiled onto the
//!   machine by [`Accelerator::try_run_with_faults`];
//! * [`classify`] maps a faulty run's result to a campaign [`Verdict`]
//!   (survived / detected / escaped).
//!
//! [`Hbm`]: matraptor_mem::Hbm
//! [`Accelerator::try_run`]: accel::Accelerator::try_run
//! [`Accelerator::try_run_with_faults`]: accel::Accelerator::try_run_with_faults

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accel;
mod config;
mod convert;
mod driver;
mod error;
mod fault;
mod layout;
mod pe;
mod port;
mod queue;
mod spal;
mod spbl;
mod stats;
mod tokens;
mod writer;

pub use accel::{Accelerator, RunOutcome};
pub use config::MatRaptorConfig;
pub use convert::{
    conversion_cycles, conversion_cycles_directed, ConversionDirection, ConversionReport,
};
pub use driver::{ConfigRegisters, Driver, DriverError, MtxWrite, RecoveryReport};
pub use error::{
    ChannelDiagnostic, ConfigError, DeadlockDiagnostic, LaneDiagnostic, MalformedInput, SimError,
};
pub use fault::{classify, FaultKind, FaultPlan, Verdict};
pub use pe::Pe;
pub use spal::SpAl;
pub use spbl::SpBl;
pub use stats::MatRaptorStats;
