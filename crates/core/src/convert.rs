//! CSR ↔ C²SR format-conversion unit (Section VII).
//!
//! The paper keeps matrices portable by storing them in CSR and converting
//! to C²SR on the way in (and back on the way out) with "a simple hardware
//! unit that reads the sparse matrix in CSR format and stores it back to
//! memory in C²SR", measuring the conversion at ~12 % of SpGEMM time.
//! This module simulates that unit against the same HBM model: a streaming
//! reader over the flat CSR arrays feeding per-channel streaming writers.

use matraptor_mem::{Hbm, MemRequest};
use matraptor_sim::Cycle;
use matraptor_sparse::Csr;

use crate::config::MatRaptorConfig;
use crate::layout::INFO_BYTES;

/// Which way the conversion unit is running (Section VII mentions both:
/// "converted to C2SR (or vice versa)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConversionDirection {
    /// CSR (flat, interleaved) → C²SR (per-channel streams).
    CsrToC2sr,
    /// C²SR → CSR, e.g. to hand the result back to portable software.
    C2srToCsr,
}

/// Result of simulating one CSR → C²SR conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionReport {
    /// Memory-clock cycles to drain the conversion.
    pub mem_cycles: u64,
    /// Bytes read (CSR row pointers + data).
    pub bytes_read: u64,
    /// Bytes written (C²SR row infos + per-channel data).
    pub bytes_written: u64,
    /// Memory clock in GHz, for time conversion.
    pub clock_ghz: f64,
}

impl ConversionReport {
    /// Wall-clock seconds of the conversion.
    pub fn elapsed_seconds(&self) -> f64 {
        self.mem_cycles as f64 / (self.clock_ghz * 1e9)
    }
}

/// Simulates converting `a` from CSR to C²SR through the configured HBM.
///
/// The unit streams the CSR `(value, col id)` array sequentially (wide
/// reads across all channels) and, as data arrives, appends each row to
/// its target channel's C²SR stream (wide writes). Reads and writes share
/// the channels, so the achieved figure lands near half of peak — the
/// O(nnz) cost the paper argues is amortised across SpGEMM's O(nnz²/N)
/// work.
///
/// # Panics
///
/// Panics if the simulation fails to drain (model bug).
pub fn conversion_cycles(a: &Csr<f64>, cfg: &MatRaptorConfig) -> ConversionReport {
    conversion_cycles_directed(a, cfg, ConversionDirection::CsrToC2sr)
}

/// [`conversion_cycles`] with an explicit direction. The two directions
/// move the same bytes with mirrored access patterns (flat-sequential on
/// the CSR side, per-channel streams on the C²SR side), so their costs
/// are nearly symmetric; both are exposed for completeness.
pub fn conversion_cycles_directed(
    a: &Csr<f64>,
    cfg: &MatRaptorConfig,
    direction: ConversionDirection,
) -> ConversionReport {
    let entry = cfg.entry_bytes as u64;
    let data_bytes = a.nnz() as u64 * entry;
    let ptr_bytes = (a.rows() as u64 + 1) * 8;
    let info_bytes = a.rows() as u64 * INFO_BYTES as u64;

    let chunk = cfg.read_request_bytes as u64;
    // Read plan: row pointers then data, flat sequential.
    let read_total = ptr_bytes.saturating_add(data_bytes);
    let mut reads: Vec<(u64, u32)> = Vec::new();
    let mut pos = 0u64;
    while pos < read_total {
        let len = chunk.min(read_total - pos);
        reads.push((pos, u32::try_from(len).unwrap_or(u32::MAX)));
        pos += len;
    }
    // Write plan: per-channel C²SR streams plus the row-info array.
    // Base far beyond the read region so reads/writes never alias rows.
    let wbase = 1u64 << 30;
    let mut writes: Vec<(u64, u32)> = Vec::new();
    let mut chan_local = vec![0u64; cfg.mem.num_channels];
    for i in 0..a.rows() {
        let ch = i % cfg.mem.num_channels;
        let mut remaining = a.row_nnz(i) as u64 * entry;
        while remaining > 0 {
            let boundary = (chan_local[ch] / chunk + 1) * chunk;
            let len = remaining.min(boundary - chan_local[ch]);
            writes.push((
                wbase + cfg.mem.channel_local_to_flat(ch, chan_local[ch]),
                u32::try_from(len).unwrap_or(u32::MAX),
            ));
            chan_local[ch] += len;
            remaining -= len;
        }
    }
    let mut ipos = 0u64;
    while ipos < info_bytes {
        let len = chunk.min(info_bytes.saturating_sub(ipos));
        writes.push((2 * wbase + ipos, u32::try_from(len).unwrap_or(u32::MAX)));
        ipos += len;
    }

    // For the reverse direction the roles swap: the unit streams the
    // per-channel C2SR data (reads) and writes the flat CSR arrays. The
    // plans are mirrored rather than rebuilt, which keeps byte totals
    // identical by construction.
    let (reads, writes) = match direction {
        ConversionDirection::CsrToC2sr => (reads, writes),
        ConversionDirection::C2srToCsr => {
            let swap_r: Vec<(u64, u32)> = writes;
            let swap_w: Vec<(u64, u32)> = reads;
            (swap_r, swap_w)
        }
    };

    // Drive: reads lead, each completed read releases proportional writes
    // (the unit buffers one burst).
    let mut hbm = Hbm::new(cfg.mem.clone());
    let mut next_read = 0usize;
    let mut next_write = 0usize;
    let mut reads_done = 0usize;
    let mut writes_done = 0usize;
    let mut writes_released = 0usize;
    let mut in_flight = 0usize;
    let max_outstanding = cfg.outstanding_requests;
    let mut id = 0u64;
    let budget = data_bytes
        .saturating_add(ptr_bytes)
        .saturating_add(info_bytes)
        .saturating_mul(64)
        .saturating_add(100_000);
    let mut t = 0u64;
    while reads_done < reads.len() || writes_done < writes.len() {
        assert!(t < budget, "format conversion did not drain");
        let now = Cycle(t);
        // Issue writes that have been released by arrived data.
        while next_write < writes_released.min(writes.len()) && in_flight < max_outstanding {
            let (addr, bytes) = writes[next_write];
            if hbm.submit(now, MemRequest::write(id, addr, bytes)) {
                id += 1;
                next_write += 1;
                in_flight += 1;
            } else {
                break;
            }
        }
        // Issue reads.
        while next_read < reads.len() && in_flight < max_outstanding {
            let (addr, bytes) = reads[next_read];
            if hbm.submit(now, MemRequest::read(id, addr, bytes)) {
                id += 1;
                next_read += 1;
                in_flight += 1;
            } else {
                break;
            }
        }
        hbm.tick(now);
        while let Some(resp) = hbm.pop_response(now) {
            in_flight -= 1;
            match resp.kind {
                matraptor_mem::MemKind::Read => {
                    reads_done += 1;
                    // Each arrived read releases a matching share of writes.
                    writes_released = (writes.len() * reads_done).div_ceil(reads.len().max(1));
                }
                matraptor_mem::MemKind::Write => writes_done += 1,
            }
        }
        t += 1;
    }

    let write_total = data_bytes.saturating_add(info_bytes);
    let (bytes_read, bytes_written) = match direction {
        ConversionDirection::CsrToC2sr => (read_total, write_total),
        ConversionDirection::C2srToCsr => (write_total, read_total),
    };
    ConversionReport { mem_cycles: t, bytes_read, bytes_written, clock_ghz: cfg.mem.clock_ghz }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matraptor_sparse::gen;

    #[test]
    fn conversion_is_linear_in_nnz() {
        let cfg = MatRaptorConfig::default();
        let small = conversion_cycles(&gen::uniform(200, 200, 2_000, 1), &cfg);
        let large = conversion_cycles(&gen::uniform(200, 200, 8_000, 1), &cfg);
        let ratio = large.mem_cycles as f64 / small.mem_cycles as f64;
        assert!(ratio > 2.0 && ratio < 6.0, "4x nnz should cost ~4x cycles, got {ratio:.2}");
    }

    #[test]
    fn byte_accounting() {
        let cfg = MatRaptorConfig::default();
        let a = gen::uniform(100, 100, 1_000, 2);
        let rep = conversion_cycles(&a, &cfg);
        assert_eq!(rep.bytes_read, 101 * 8 + 1_000 * 8);
        assert_eq!(rep.bytes_written, 1_000 * 8 + 100 * 8);
        assert!(rep.elapsed_seconds() > 0.0);
    }

    #[test]
    fn reverse_direction_costs_about_the_same() {
        let cfg = MatRaptorConfig::default();
        let a = gen::uniform(300, 300, 9_000, 4);
        let fwd = conversion_cycles_directed(&a, &cfg, ConversionDirection::CsrToC2sr);
        let rev = conversion_cycles_directed(&a, &cfg, ConversionDirection::C2srToCsr);
        let ratio = rev.mem_cycles as f64 / fwd.mem_cycles as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "asymmetric conversion: {ratio:.2}");
        // Byte totals mirror.
        assert_eq!(fwd.bytes_read, rev.bytes_written);
        assert_eq!(fwd.bytes_written, rev.bytes_read);
    }

    #[test]
    fn achieves_reasonable_bandwidth() {
        // Conversion moves read+write ≈ 2x data; with shared channels the
        // elapsed bandwidth should be a sizable fraction of peak.
        let cfg = MatRaptorConfig::default();
        let a = gen::uniform(500, 500, 50_000, 3);
        let rep = conversion_cycles(&a, &cfg);
        let total = (rep.bytes_read + rep.bytes_written) as f64;
        let gbs = total / rep.mem_cycles as f64 * cfg.mem.clock_ghz;
        assert!(gbs > 0.3 * cfg.mem.peak_bandwidth_gbs(), "conversion too slow: {gbs:.1} GB/s");
    }
}
