//! Run statistics: the raw material for Figs. 7, 8, 9 and 11.

use matraptor_sim::stats::CycleBreakdown;
use matraptor_sim::trace::StageBreakdown;

/// Per-lane, per-stage cycle attribution for one run.
///
/// Each breakdown charges exactly one bucket per accelerator cycle, so on
/// a completed run every stage's `total()` equals
/// [`MatRaptorStats::total_cycles`] — the invariant the `trace_report`
/// bench bin asserts across the whole synthetic suite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneAttribution {
    /// SpAL (A-loader) attribution.
    pub spal: StageBreakdown,
    /// SpBL (B-loader) attribution.
    pub spbl: StageBreakdown,
    /// PE attribution (the PE's merge stall maps to queue-stall).
    pub pe: StageBreakdown,
    /// Writer attribution.
    pub writer: StageBreakdown,
}

impl LaneAttribution {
    /// The four stages as `(name, breakdown)` pairs, in pipeline order.
    pub fn stages(&self) -> [(&'static str, &StageBreakdown); 4] {
        [("spal", &self.spal), ("spbl", &self.spbl), ("pe", &self.pe), ("writer", &self.writer)]
    }
}

/// Everything measured during one accelerator run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatRaptorStats {
    /// Total accelerator-clock cycles from start to full drain.
    pub total_cycles: u64,
    /// Accelerator clock in GHz (for time conversion).
    pub clock_ghz: f64,
    /// Aggregate busy/stall breakdown summed over all PEs (Fig. 9).
    pub breakdown: CycleBreakdown,
    /// Per-PE breakdowns.
    pub per_pe_breakdown: Vec<CycleBreakdown>,
    /// Useful scalar multiplies retired.
    pub multiplies: u64,
    /// Additions retired (merge + adder tree).
    pub additions: u64,
    /// Useful bytes read from HBM.
    pub bytes_read: u64,
    /// Useful bytes written to HBM.
    pub bytes_written: u64,
    /// Burst-quantized DRAM read traffic (pin bytes).
    pub traffic_read: u64,
    /// Burst-quantized DRAM write traffic (pin bytes).
    pub traffic_written: u64,
    /// Non-zeros of A assigned to each PE (Fig. 11's imbalance input).
    pub per_pe_nnz: Vec<u64>,
    /// Output rows that overflowed the sorting queues and fell back to
    /// the CPU (Section VII).
    pub overflow_rows: usize,
    /// Upper-bound gap entries left in the output stream for overflowed
    /// rows (Section VII's padding; zero when nothing overflowed).
    pub overflow_padding_entries: u64,
    /// Cycles with Phase I active (any PE), for the paper's phase-ratio
    /// observation.
    pub phase1_cycles: u64,
    /// Cycles with Phase II active (any PE).
    pub phase2_cycles: u64,
    /// Per-lane, per-stage busy/mem-stall/queue-stall/idle attribution.
    pub per_lane_attribution: Vec<LaneAttribution>,
}

impl MatRaptorStats {
    /// Wall-clock seconds of the run.
    pub fn elapsed_seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Total arithmetic operations, paper-style (multiplies + additions).
    pub fn total_ops(&self) -> u64 {
        self.multiplies + self.additions
    }

    /// Achieved throughput in GOP/s — the y-axis of the roofline (Fig. 7).
    pub fn achieved_gops(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / self.elapsed_seconds() / 1e9
    }

    /// Operation intensity in OPs/byte — the x-axis of the roofline
    /// (Fig. 7). Uses *pin traffic* (burst-quantized bytes), which is what
    /// gem5's DRAM counters report and what the paper's roofline is drawn
    /// against.
    pub fn op_intensity(&self) -> f64 {
        let bytes = self.traffic_read + self.traffic_written;
        if bytes == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / bytes as f64
    }

    /// Achieved memory bandwidth in GB/s over the run (pin traffic).
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        (self.traffic_read + self.traffic_written) as f64 / self.elapsed_seconds() / 1e9
    }

    /// Achieved *useful* bandwidth in GB/s (requested bytes only).
    pub fn useful_bandwidth_gbs(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.bytes_read.saturating_add(self.bytes_written) as f64 / self.elapsed_seconds() / 1e9
    }

    /// Load imbalance as the paper defines it for Fig. 11: max/min of the
    /// per-PE non-zero counts of A (1.0 = perfectly balanced).
    ///
    /// Returns `f64::INFINITY` when some PE received no work at all.
    pub fn load_imbalance(&self) -> f64 {
        let max = self.per_pe_nnz.iter().copied().max().unwrap_or(0);
        let min = self.per_pe_nnz.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// Ratio of Phase I to Phase II cycles; the paper measures this in
    /// `[2, 15]` across the suite.
    pub fn phase_ratio(&self) -> f64 {
        if self.phase2_cycles == 0 {
            f64::INFINITY
        } else {
            self.phase1_cycles as f64 / self.phase2_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatRaptorStats {
        MatRaptorStats {
            total_cycles: 2_000,
            clock_ghz: 2.0,
            breakdown: CycleBreakdown::default(),
            per_pe_breakdown: vec![],
            multiplies: 1_000,
            additions: 500,
            bytes_read: 8_000,
            bytes_written: 2_000,
            traffic_read: 8_000,
            traffic_written: 2_000,
            per_pe_nnz: vec![100, 110, 90, 105],
            overflow_rows: 0,
            overflow_padding_entries: 0,
            phase1_cycles: 1_500,
            phase2_cycles: 300,
            per_lane_attribution: vec![],
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.elapsed_seconds() - 1e-6).abs() < 1e-15);
        assert_eq!(s.total_ops(), 1_500);
        assert!((s.achieved_gops() - 1.5).abs() < 1e-9);
        assert!((s.op_intensity() - 0.15).abs() < 1e-12);
        assert!((s.achieved_bandwidth_gbs() - 10.0).abs() < 1e-9);
        assert!((s.load_imbalance() - 110.0 / 90.0).abs() < 1e-12);
        assert!((s.phase_ratio() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let mut s = sample();
        s.per_pe_nnz = vec![0, 0];
        assert_eq!(s.load_imbalance(), 1.0);
        s.per_pe_nnz = vec![5, 0];
        assert_eq!(s.load_imbalance(), f64::INFINITY);
        s.phase2_cycles = 0;
        assert_eq!(s.phase_ratio(), f64::INFINITY);
    }
}
