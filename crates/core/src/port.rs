//! The lane-side handle to the shared memory system (the crossbar of
//! Fig. 5a).

use std::collections::BTreeMap;

use matraptor_mem::{Hbm, MemRequest};
use matraptor_sim::Cycle;

/// A borrowed view of the memory system handed to each lane during its
/// tick. Allocates globally unique request ids and records which lane each
/// request belongs to so responses can be routed back (the crossbar is
/// partial — each SpAL/PE talks to one channel — which the address layout
/// already encodes; the route map is the model's bookkeeping, not extra
/// hardware).
#[derive(Debug)]
pub(crate) struct MemPort<'a> {
    pub hbm: &'a mut Hbm,
    /// Memory-domain time of the current accelerator cycle.
    pub mem_now: Cycle,
    pub next_id: &'a mut u64,
    /// Request id → lane index, for response routing.
    pub route: &'a mut BTreeMap<u64, usize>,
    /// The lane currently ticking.
    pub lane: usize,
}

impl MemPort<'_> {
    /// Attempts to issue a read; returns the request id if accepted.
    pub(crate) fn try_read(&mut self, addr: u64, bytes: u32) -> Option<u64> {
        let id = *self.next_id;
        if self.hbm.submit(self.mem_now, MemRequest::read(id, addr, bytes)) {
            self.route.insert(id, self.lane);
            *self.next_id += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Attempts to issue a write; returns the request id if accepted.
    pub(crate) fn try_write(&mut self, addr: u64, bytes: u32) -> Option<u64> {
        let id = *self.next_id;
        if self.hbm.submit(self.mem_now, MemRequest::write(id, addr, bytes)) {
            self.route.insert(id, self.lane);
            *self.next_id += 1;
            Some(id)
        } else {
            None
        }
    }
}
