//! Memory layout of the three C²SR matrices in the flat address space.

use matraptor_mem::HbmConfig;
use matraptor_sparse::C2srRow;

/// Base addresses of the six regions (A/B/C × info/data).
///
/// Each base is a multiple of `interleave_bytes × num_channels`, so adding
/// a base never changes which channel a channel-local offset maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Regions {
    pub a_info: u64,
    pub a_data: u64,
    pub b_info: u64,
    pub b_data: u64,
    pub c_info: u64,
    pub c_data: u64,
}

impl Regions {
    pub(crate) const DEFAULT: Regions = Regions {
        a_info: 0x0000_0000,
        a_data: 0x1000_0000,
        b_info: 0x2000_0000,
        b_data: 0x3000_0000,
        c_info: 0x4000_0000,
        c_data: 0x5000_0000,
    };
}

/// Address computation for one C²SR matrix.
///
/// The *(row length, row pointer)* array lives flat and channel-interleaved
/// at `info_base` (8 B per row — the paper's pair of 4 B words). The
/// *(value, col id)* data lives as per-channel streams: entry `e` of
/// channel `ch` sits at channel-local byte `e × entry_bytes`, mapped to a
/// flat address by the interleaving.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatrixLayout {
    pub info_base: u64,
    pub data_base: u64,
    pub entry_bytes: u64,
}

/// Bytes per *(row length, row pointer)* metadata pair.
pub(crate) const INFO_BYTES: u32 = 8;

impl MatrixLayout {
    /// Flat address of row `row`'s metadata pair.
    pub(crate) fn info_addr(&self, row: usize) -> u64 {
        self.info_base + row as u64 * INFO_BYTES as u64
    }

    /// The burst-clipped read/write requests covering a row's data within
    /// its channel: returns `(flat_addr, bytes)` pairs, each confined to
    /// one interleave block so no request splits across channels.
    pub(crate) fn row_data_requests(
        &self,
        cfg: &HbmConfig,
        channel: usize,
        info: C2srRow,
        request_bytes: u32,
    ) -> Vec<(u64, u32)> {
        let start = self.data_base_local() + info.offset as u64 * self.entry_bytes;
        let end = start + info.len as u64 * self.entry_bytes;
        let mut out = Vec::new();
        let mut pos = start;
        let chunk = request_bytes as u64;
        while pos < end {
            // Clip to the next request-size boundary in channel-local space
            // so each request is a single aligned streaming access.
            let boundary = (pos / chunk + 1) * chunk;
            let stop = boundary.min(end);
            out.push((cfg.channel_local_to_flat(channel, pos), (stop - pos) as u32));
            pos = stop;
        }
        out
    }

    /// Channel-local byte offset where this matrix's data region begins.
    ///
    /// The flat `data_base` is a multiple of `interleave × channels`, so
    /// in every channel's local space the region starts at
    /// `data_base / num_channels`.
    fn data_base_local(&self) -> u64 {
        // Recovered lazily by the caller's config; stored flat base is in
        // units that divide evenly. To keep this self-contained we stash
        // the local base directly in `data_base` at construction time.
        self.data_base
    }
}

/// Builds the layout for a matrix given its region bases.
///
/// `data_base_flat` is rounded down to a multiple of
/// `interleave × num_channels` (the region anchors are spaced 256 MB
/// apart, so alignment never causes overlap); its channel-local
/// equivalent is the aligned base divided by the channel count.
pub(crate) fn matrix_layout(
    cfg: &HbmConfig,
    info_base: u64,
    data_base_flat: u64,
    entry_bytes: u64,
) -> MatrixLayout {
    let stripe = cfg.interleave_bytes as u64 * cfg.num_channels as u64;
    let aligned = data_base_flat / stripe * stripe;
    MatrixLayout { info_base, data_base: aligned / cfg.num_channels as u64, entry_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_addresses_are_dense() {
        let cfg = HbmConfig::with_channels(2);
        let l = matrix_layout(&cfg, 0x100, 0x1000, 8);
        assert_eq!(l.info_addr(0), 0x100);
        assert_eq!(l.info_addr(3), 0x118);
    }

    #[test]
    fn row_requests_stay_on_channel_and_cover_row() {
        let cfg = HbmConfig::with_channels(4);
        let l = matrix_layout(&cfg, 0, 0x1000, 8);
        // Row with 20 entries (160 B) starting at entry 5 (byte 40) on
        // channel 3.
        let reqs = l.row_data_requests(&cfg, 3, C2srRow { len: 20, offset: 5 }, 64);
        let total: u32 = reqs.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 160);
        for &(addr, bytes) in &reqs {
            assert_eq!(cfg.channel_of_addr(addr), 3);
            assert!(bytes <= 64);
        }
        // First request is the misaligned head: from byte 40 to the 64 B
        // boundary + region base offset (0x1000/4 = 0x400 is 64-aligned).
        assert_eq!(reqs[0].1, 24);
    }

    #[test]
    fn empty_row_has_no_requests() {
        let cfg = HbmConfig::with_channels(2);
        let l = matrix_layout(&cfg, 0, 0, 8);
        assert!(l.row_data_requests(&cfg, 0, C2srRow { len: 0, offset: 9 }, 64).is_empty());
    }

    #[test]
    fn misaligned_base_is_rounded_down() {
        let cfg = HbmConfig::with_channels(8);
        let l = matrix_layout(&cfg, 0, 100, 8);
        // 100 rounds down to 0 under a 512 B stripe.
        let reqs = l.row_data_requests(&cfg, 0, C2srRow { len: 1, offset: 0 }, 64);
        assert_eq!(cfg.channel_of_addr(reqs[0].0), 0);
    }

    #[test]
    fn default_regions_are_stripe_aligned_for_paper_config() {
        let cfg = HbmConfig::default();
        let stripe = cfg.interleave_bytes as u64 * cfg.num_channels as u64;
        for base in [Regions::DEFAULT.a_data, Regions::DEFAULT.b_data, Regions::DEFAULT.c_data] {
            assert_eq!(base % stripe, 0);
        }
    }
}
