//! The processing element: multiplier + two sets of sorting queues.

use std::collections::VecDeque;

use matraptor_sim::stats::{Counter, CycleBreakdown};
use matraptor_sim::watchdog::mix_signature;

use crate::checkpoint::{BreakdownState, PeState};
use crate::config::MatRaptorConfig;
use crate::layout::MatrixLayout;
use crate::queue::{QueueSet, VectorMode};
use crate::tokens::PeTok;
use crate::writer::Writer;

/// How one PE cycle was spent — the categories of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CycleClass {
    Busy,
    MergeStall,
    MemoryStall,
    Idle,
}

/// A processing element (Fig. 5b).
///
/// Phase I consumes one product per cycle from SpBL, multiplies it (the
/// product value arrives pre-multiplied in this model; the timing is
/// identical since both designs retire one MAC per cycle) and merges it
/// into the active queue set: direct fill for the first Q−1 partial-sum
/// vectors, then two-way merge through the helper queue. Phase II drains
/// the *other* queue set through the min-column-id selector and adder tree
/// into the output writer. The two phases run concurrently on the two
/// queue sets — the double buffering that Section IV-B credits for high
/// multiplier utilisation.
#[derive(Debug)]
pub struct Pe {
    sets: [QueueSet; 2],
    // conformance:allow(checkpoint-coverage): fixed hardware configuration, never mutated after construction
    double_buffering: bool,
    fill: usize,
    vec_mode: Option<VectorMode>,
    phase2: Option<Phase2>,
    /// When set, the current row overflowed and its remaining tokens are
    /// being discarded (Section VII).
    skipping: bool,
    products_in_row: u64,
    breakdown: CycleBreakdown,
    /// Useful multiplies retired (one per product consumed).
    pub(crate) multiplies: Counter,
    /// Additions performed in merges and the Phase II adder tree.
    pub(crate) additions: Counter,
    /// Rows that overflowed the queues and fell back to the CPU.
    pub(crate) overflow_rows: Vec<u32>,
    /// Cycles spent in each phase (the paper reports their ratio ∈ [2,15]).
    pub(crate) phase1_cycles: Counter,
    pub(crate) phase2_cycles: Counter,
    /// Fault injection: force a queue overflow once the multiply count
    /// reaches this threshold mid-row. One-shot; cleared after firing.
    pub(crate) fault_force_overflow_after: Option<u64>,
    /// Whether overflowed rows may be delegated to the CPU (the paper's
    /// Section VII path). Fault campaigns disable it to prove the
    /// overflow is reported rather than silently dropped.
    pub(crate) cpu_fallback: bool,
    /// Set when a row overflowed while `cpu_fallback` was disabled; the
    /// accelerator polls this and aborts with `SimError::QueueOverflow`.
    pub(crate) fatal_overflow: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Phase2 {
    set: usize,
    row: u32,
}

impl Pe {
    pub(crate) fn new(cfg: &MatRaptorConfig) -> Self {
        let cap = cfg.queue_capacity_entries();
        Pe {
            sets: [QueueSet::new(cfg.queues_per_pe, cap), QueueSet::new(cfg.queues_per_pe, cap)],
            double_buffering: cfg.double_buffering,
            fill: 0,
            vec_mode: None,
            phase2: None,
            skipping: false,
            products_in_row: 0,
            breakdown: CycleBreakdown::default(),
            multiplies: Counter::default(),
            additions: Counter::default(),
            overflow_rows: Vec::new(),
            phase1_cycles: Counter::default(),
            phase2_cycles: Counter::default(),
            fault_force_overflow_after: None,
            cpu_fallback: true,
            fatal_overflow: None,
        }
    }

    /// One accelerator cycle: Phase II datapath plus one Phase I action.
    ///
    /// `fallback` computes an output row in software — the CPU delegation
    /// path for queue overflows (Section VII).
    pub(crate) fn tick(
        &mut self,
        input: &mut VecDeque<PeTok>,
        writer: &mut Writer,
        cfg: &MatRaptorConfig,
        layout: &MatrixLayout,
        fallback: &dyn Fn(u32) -> (Vec<u32>, Vec<f64>),
        upstream_done: bool,
    ) {
        self.tick_phase2(writer, cfg, layout);
        let class = self.tick_phase1(input, writer, fallback, upstream_done);
        if !matches!(class, CycleClass::Idle) {
            self.phase1_cycles.incr();
        }
        if self.phase2.is_some() {
            self.phase2_cycles.incr();
        }
        self.charge(class);
    }

    /// Charges exactly one attribution bucket for the cycle just ticked.
    fn charge(&mut self, class: CycleClass) {
        match class {
            CycleClass::Busy => self.breakdown.busy.incr(),
            CycleClass::MergeStall => self.breakdown.merge_stall.incr(),
            CycleClass::MemoryStall => self.breakdown.memory_stall.incr(),
            CycleClass::Idle => self.breakdown.idle.incr(),
        }
    }

    fn tick_phase2(&mut self, writer: &mut Writer, cfg: &MatRaptorConfig, layout: &MatrixLayout) {
        let Some(ph) = self.phase2 else { return };
        let set = &mut self.sets[ph.set];
        if set.is_empty() {
            writer.finish_row(ph.row, cfg, layout);
            set.reset_for_new_row();
            self.phase2 = None;
        } else if writer.can_accept() {
            // conformance:allow(panic-safety): invariant: caller checked the set is non-empty before popping
            let (col, val, popped) = set.pop_min().expect("set not empty");
            if popped > 1 {
                self.additions.add(popped as u64 - 1);
            }
            if val != 0.0 {
                writer.push_entry(ph.row, col, val, cfg);
            }
        }
        // else: write buffer full — Phase II stalls this cycle.
    }

    fn tick_phase1(
        &mut self,
        input: &mut VecDeque<PeTok>,
        writer: &mut Writer,
        fallback: &dyn Fn(u32) -> (Vec<u32>, Vec<f64>),
        upstream_done: bool,
    ) -> CycleClass {
        // Without double buffering, Phase II occupies the (single) queue
        // datapath and Phase I must wait — the ablation of Fig. 5b's
        // duplicated queue sets.
        if !self.double_buffering && self.phase2.is_some() {
            return CycleClass::MergeStall;
        }
        // Fault injection: pretend the active queue just filled. Only
        // mid-vector (the states in which a real overflow can occur), and
        // one-shot so a campaign injects exactly one overflow.
        if let Some(after) = self.fault_force_overflow_after {
            if self.vec_mode.is_some() && !self.skipping && self.multiplies.get() >= after {
                self.fault_force_overflow_after = None;
                self.begin_overflow();
                return CycleClass::MergeStall;
            }
        }
        // Overflow-skip mode: discard the rest of the row.
        if self.skipping {
            return match input.pop_front() {
                None => self.starved(upstream_done),
                Some(PeTok::Product { .. }) => {
                    self.products_in_row += 1;
                    CycleClass::MergeStall
                }
                Some(PeTok::EndOfVector) => CycleClass::MergeStall,
                Some(PeTok::EndOfRow { row }) => {
                    // The previous row may still be draining through Phase
                    // II; recording now would write rows out of order.
                    if self.phase2.is_some() {
                        input.push_front(PeTok::EndOfRow { row });
                        return CycleClass::MergeStall;
                    }
                    if !self.cpu_fallback {
                        // No CPU to delegate to: the row is unrecoverable.
                        // Park the marker and raise the fatal flag for the
                        // accelerator to convert into a structured error.
                        self.fatal_overflow = Some(row);
                        input.push_front(PeTok::EndOfRow { row });
                        return CycleClass::MergeStall;
                    }
                    let (cols, vals) = fallback(row);
                    writer.record_overflow_row(row, cols, vals, self.products_in_row);
                    self.overflow_rows.push(row);
                    self.skipping = false;
                    self.products_in_row = 0;
                    CycleClass::MergeStall
                }
            };
        }

        // Bounded loop: marker handling and queue selection are free
        // (combinational); exactly one costed action is taken per cycle.
        for _ in 0..8 {
            match self.vec_mode {
                None => match input.front().copied() {
                    None => return self.starved(upstream_done),
                    Some(PeTok::EndOfRow { row }) => {
                        if self.phase2.is_some() {
                            // Other set still merging: the double buffer is
                            // full — the stall Fig. 9 charges to "merge".
                            return CycleClass::MergeStall;
                        }
                        self.phase2 = Some(Phase2 { set: self.fill, row });
                        self.fill ^= 1;
                        self.products_in_row = 0;
                        input.pop_front();
                        continue;
                    }
                    Some(PeTok::EndOfVector) => {
                        input.pop_front();
                        continue;
                    }
                    Some(PeTok::Product { .. }) => {
                        self.vec_mode = Some(self.sets[self.fill].start_vector());
                        continue;
                    }
                },
                Some(VectorMode::Direct { queue }) => match input.front().copied() {
                    None => return self.starved(upstream_done),
                    Some(PeTok::Product { val, col }) => {
                        if self.sets[self.fill].queue_ref(queue).is_full() {
                            self.begin_overflow();
                            return CycleClass::MergeStall;
                        }
                        self.sets[self.fill].queue(queue).push(col, val);
                        input.pop_front();
                        self.products_in_row += 1;
                        self.multiplies.incr();
                        return CycleClass::Busy;
                    }
                    Some(PeTok::EndOfVector) => {
                        self.vec_mode = None;
                        input.pop_front();
                        continue;
                    }
                    Some(PeTok::EndOfRow { .. }) => {
                        // Defensive: treat like an implicit end-of-vector.
                        self.vec_mode = None;
                        continue;
                    }
                },
                Some(VectorMode::Merge { src, helper }) => {
                    let src_front = self.sets[self.fill].queue_ref(src).front_col();
                    match input.front().copied() {
                        None => {
                            // Cannot advance the merge without knowing the
                            // next incoming column id.
                            return self.starved(upstream_done);
                        }
                        Some(PeTok::Product { val, col }) => match src_front {
                            Some(sc) if sc < col => {
                                if self.sets[self.fill].queue_ref(helper).is_full() {
                                    self.begin_overflow();
                                    return CycleClass::MergeStall;
                                }
                                let (c, v) =
                                    // conformance:allow(panic-safety): invariant: `src` was selected because its queue front exists
                                    self.sets[self.fill].queue(src).pop().expect("front");
                                self.sets[self.fill].queue(helper).push(c, v);
                                return CycleClass::MergeStall;
                            }
                            Some(sc) if sc == col => {
                                if self.sets[self.fill].queue_ref(helper).is_full() {
                                    self.begin_overflow();
                                    return CycleClass::MergeStall;
                                }
                                let (_, v) =
                                    // conformance:allow(panic-safety): invariant: `src` was selected because its queue front exists
                                    self.sets[self.fill].queue(src).pop().expect("front");
                                self.sets[self.fill].queue(helper).push(col, v + val);
                                input.pop_front();
                                self.products_in_row += 1;
                                self.multiplies.incr();
                                self.additions.incr();
                                return CycleClass::Busy;
                            }
                            _ => {
                                if self.sets[self.fill].queue_ref(helper).is_full() {
                                    self.begin_overflow();
                                    return CycleClass::MergeStall;
                                }
                                self.sets[self.fill].queue(helper).push(col, val);
                                input.pop_front();
                                self.products_in_row += 1;
                                self.multiplies.incr();
                                return CycleClass::Busy;
                            }
                        },
                        Some(PeTok::EndOfVector) => {
                            if src_front.is_some() {
                                if self.sets[self.fill].queue_ref(helper).is_full() {
                                    self.begin_overflow();
                                    return CycleClass::MergeStall;
                                }
                                let (c, v) =
                                    // conformance:allow(panic-safety): invariant: `src` was selected because its queue front exists
                                    self.sets[self.fill].queue(src).pop().expect("front");
                                self.sets[self.fill].queue(helper).push(c, v);
                                return CycleClass::MergeStall;
                            }
                            self.sets[self.fill].finish_merge(src, helper);
                            self.vec_mode = None;
                            input.pop_front();
                            continue;
                        }
                        Some(PeTok::EndOfRow { .. }) => {
                            // Should be preceded by EndOfVector; drain as if.
                            if src_front.is_some() {
                                if self.sets[self.fill].queue_ref(helper).is_full() {
                                    self.begin_overflow();
                                    return CycleClass::MergeStall;
                                }
                                let (c, v) =
                                    // conformance:allow(panic-safety): invariant: `src` was selected because its queue front exists
                                    self.sets[self.fill].queue(src).pop().expect("front");
                                self.sets[self.fill].queue(helper).push(c, v);
                                return CycleClass::MergeStall;
                            }
                            self.sets[self.fill].finish_merge(src, helper);
                            self.vec_mode = None;
                            continue;
                        }
                    }
                }
            }
        }
        // Exhausted the free-action budget without a costed action — treat
        // as a marker-processing cycle.
        CycleClass::MergeStall
    }

    fn begin_overflow(&mut self) {
        self.sets[self.fill].hard_clear();
        self.vec_mode = None;
        self.skipping = true;
    }

    fn starved(&self, upstream_done: bool) -> CycleClass {
        if upstream_done {
            CycleClass::Idle
        } else {
            CycleClass::MemoryStall
        }
    }

    /// Whether the PE has no work in flight.
    pub(crate) fn is_done(&self, input_empty: bool) -> bool {
        input_empty && self.vec_mode.is_none() && self.phase2.is_none() && !self.skipping
    }

    /// The busy/stall cycle breakdown accumulated so far (Fig. 9).
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Whether the PE holds any in-progress state (for deadlock
    /// diagnostics).
    pub(crate) fn is_active(&self) -> bool {
        self.vec_mode.is_some() || self.phase2.is_some() || self.skipping
    }

    /// Forward-progress signature for the watchdog. Folds work counters
    /// and queue occupancies; deliberately **excludes** `phase1_cycles`
    /// and the stall counters, which keep advancing while the PE waits
    /// and would therefore hide a wedge forever.
    pub(crate) fn progress_signature(&self) -> u64 {
        let mut sig = mix_signature(0, self.multiplies.get());
        sig = mix_signature(sig, self.additions.get());
        sig = mix_signature(sig, self.products_in_row);
        sig = mix_signature(sig, self.fill as u64);
        sig = mix_signature(sig, u64::from(self.skipping));
        sig = mix_signature(sig, self.overflow_rows.len() as u64);
        sig = mix_signature(sig, self.sets[0].total_entries() as u64);
        sig = mix_signature(sig, self.sets[1].total_entries() as u64);
        let mode = match self.vec_mode {
            None => 0u64,
            Some(VectorMode::Direct { queue }) => 1 | (queue as u64) << 8,
            Some(VectorMode::Merge { src, helper }) => {
                2 | (src as u64) << 8 | (helper as u64) << 32
            }
        };
        sig = mix_signature(sig, mode);
        let ph2 = self.phase2.map_or(0u64, |p| 1 | (p.set as u64) << 8 | (p.row as u64) << 16);
        mix_signature(sig, ph2)
    }

    /// Captures all mutable state for a checkpoint. Queue shapes and the
    /// double-buffering mode are rebuilt by [`Pe::new`] on restore.
    pub(crate) fn snapshot(&self) -> PeState {
        PeState {
            set0: self.sets[0].snapshot(),
            set1: self.sets[1].snapshot(),
            fill: self.fill as u64,
            vec_mode: self.vec_mode,
            phase2: self.phase2.map(|p| (p.set as u64, p.row)),
            skipping: self.skipping,
            products_in_row: self.products_in_row,
            breakdown: BreakdownState {
                busy: self.breakdown.busy.get(),
                merge_stall: self.breakdown.merge_stall.get(),
                memory_stall: self.breakdown.memory_stall.get(),
                idle: self.breakdown.idle.get(),
            },
            multiplies: self.multiplies.get(),
            additions: self.additions.get(),
            overflow_rows: self.overflow_rows.clone(),
            phase1_cycles: self.phase1_cycles.get(),
            phase2_cycles: self.phase2_cycles.get(),
            fault_force_overflow_after: self.fault_force_overflow_after,
            cpu_fallback: self.cpu_fallback,
            fatal_overflow: self.fatal_overflow,
        }
    }

    /// Restores a snapshot into a freshly constructed PE built from the
    /// same configuration.
    pub(crate) fn restore(&mut self, state: &PeState) {
        self.sets[0].restore(&state.set0);
        self.sets[1].restore(&state.set1);
        self.fill = state.fill as usize;
        self.vec_mode = state.vec_mode;
        self.phase2 = state.phase2.map(|(set, row)| Phase2 { set: set as usize, row });
        self.skipping = state.skipping;
        self.products_in_row = state.products_in_row;
        self.breakdown = CycleBreakdown::default();
        self.breakdown.busy.add(state.breakdown.busy);
        self.breakdown.merge_stall.add(state.breakdown.merge_stall);
        self.breakdown.memory_stall.add(state.breakdown.memory_stall);
        self.breakdown.idle.add(state.breakdown.idle);
        self.multiplies = Counter::default();
        self.multiplies.add(state.multiplies);
        self.additions = Counter::default();
        self.additions.add(state.additions);
        self.overflow_rows = state.overflow_rows.clone();
        self.phase1_cycles = Counter::default();
        self.phase1_cycles.add(state.phase1_cycles);
        self.phase2_cycles = Counter::default();
        self.phase2_cycles.add(state.phase2_cycles);
        self.fault_force_overflow_after = state.fault_force_overflow_after;
        self.cpu_fallback = state.cpu_fallback;
        self.fatal_overflow = state.fatal_overflow;
    }
}
