//! Configuration sweeps: the accelerator must stay functionally correct
//! and behave sanely across its whole parameter space.

use matraptor_core::{Accelerator, MatRaptorConfig};
use matraptor_mem::HbmConfig;
use matraptor_sparse::{gen, spgemm};

fn check(cfg: MatRaptorConfig, seed: u64) {
    let a = gen::uniform(80, 80, 500, seed);
    let b = gen::uniform(80, 80, 450, seed + 1);
    let outcome = Accelerator::new(cfg).run(&a, &b);
    assert!(outcome.c.approx_eq(&spgemm::gustavson(&a, &b), 1e-6));
}

#[test]
fn lane_counts() {
    for lanes in [1usize, 2, 3, 4, 8] {
        let cfg = MatRaptorConfig {
            num_lanes: lanes,
            mem: HbmConfig::with_channels(lanes),
            ..MatRaptorConfig::default()
        };
        check(cfg, 100 + lanes as u64);
    }
}

#[test]
fn queue_counts() {
    for q in [3usize, 4, 5, 10, 16] {
        let cfg = MatRaptorConfig { queues_per_pe: q, ..MatRaptorConfig::small_test() };
        check(cfg, 200 + q as u64);
    }
}

#[test]
fn queue_sizes_including_overflowing() {
    for bytes in [32usize, 64, 256, 4096, 65536] {
        let cfg = MatRaptorConfig { queue_bytes: bytes, ..MatRaptorConfig::small_test() };
        check(cfg, 300 + bytes as u64);
    }
}

#[test]
fn read_widths() {
    for width in [8u32, 16, 32, 64] {
        let cfg = MatRaptorConfig { read_request_bytes: width, ..MatRaptorConfig::small_test() };
        check(cfg, 400 + width as u64);
    }
}

#[test]
fn clock_ratios() {
    for clock in [1.0f64, 2.0, 3.0, 4.0] {
        let cfg = MatRaptorConfig { clock_ghz: clock, ..MatRaptorConfig::small_test() };
        check(cfg, 500 + clock as u64);
    }
}

#[test]
fn single_queue_set_mode() {
    let cfg = MatRaptorConfig { double_buffering: false, ..MatRaptorConfig::small_test() };
    check(cfg, 600);
}

#[test]
fn shallow_fifos_do_not_deadlock() {
    let cfg = MatRaptorConfig {
        coupling_fifo_depth: 1,
        outstanding_requests: 2,
        ..MatRaptorConfig::small_test()
    };
    check(cfg, 700);
}

#[test]
fn shallow_memory_queues_do_not_deadlock() {
    let cfg = MatRaptorConfig {
        mem: HbmConfig { queue_depth: 2, ..HbmConfig::with_channels(2) },
        ..MatRaptorConfig::small_test()
    };
    check(cfg, 800);
}

#[test]
fn degenerate_matrices() {
    let accel = Accelerator::new(MatRaptorConfig::small_test());
    // 1x1.
    let one = gen::uniform(1, 1, 1, 1);
    assert_eq!(accel.run(&one, &one).c.nnz(), 1);
    // Single dense row times single dense column.
    let row = matraptor_sparse::Csr::from_parts(1, 6, vec![0, 6], (0..6).collect(), vec![1.0; 6])
        .expect("valid");
    let col = row.transpose();
    let outcome = accel.run(&row, &col);
    assert_eq!(outcome.c.get(0, 0), Some(6.0));
    // And the rank-1 outer-product shape (dense output).
    let outer = accel.run(&col, &row);
    assert_eq!(outer.c.nnz(), 36);
}

#[test]
fn stats_are_internally_consistent() {
    let a = gen::rmat(200, 1_500, gen::RmatParams::default(), 9);
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let s = Accelerator::new(cfg).run(&a, &a).stats;
    // Breakdown accounts for every PE cycle of every lane.
    assert_eq!(s.breakdown.total(), s.total_cycles * 8);
    // Per-PE breakdowns sum to the aggregate.
    let sum: u64 = s.per_pe_breakdown.iter().map(|b| b.total()).sum();
    assert_eq!(sum, s.breakdown.total());
    // Traffic is at least the useful bytes.
    assert!(s.traffic_read >= s.bytes_read);
    assert!(s.traffic_written >= s.bytes_written);
    // Ops match the multiply/addition counters.
    assert_eq!(s.total_ops(), s.multiplies + s.additions);
}
