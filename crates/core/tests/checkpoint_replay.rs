//! Checkpoint/restore replay-determinism tests: a run paused at cycle
//! *k*, serialized, deserialized, and resumed must be **bit-identical**
//! to the uninterrupted run — same total cycle count, same output
//! structure, same value bits — for any *k*. This is the invariant of
//! DESIGN.md §9, and the CI `checkpoint-replay` job runs this file.

use matraptor_core::{
    Accelerator, Checkpoint, CheckpointError, FaultKind, FaultPlan, MatRaptorConfig, SimError,
    CHECKPOINT_VERSION,
};
use matraptor_sparse::{gen, Csr};

fn test_matrices() -> (Csr<f64>, Csr<f64>) {
    (gen::uniform(48, 48, 400, 11), gen::uniform(48, 48, 400, 12))
}

fn accel() -> Accelerator {
    Accelerator::new(MatRaptorConfig::small_test())
}

fn value_bits(c: &Csr<f64>) -> Vec<u64> {
    c.values().iter().map(|v| v.to_bits()).collect()
}

/// The tentpole invariant, at several snapshot cycles including ones that
/// land mid-burst, mid-row, and near the drain: pause at k, round-trip
/// the checkpoint through bytes, resume, and compare everything.
#[test]
fn replay_is_bit_identical_across_snapshot_cycles() {
    let (a, b) = test_matrices();
    let accel = accel();
    let full = accel.try_run(&a, &b).expect("clean run");
    let total = full.stats.total_cycles;
    assert!(total > 1_000, "test matrices should run for a while, got {total}");
    for k in [1, 64, 333, total / 2, total - 2] {
        let ck = accel
            .try_run_to_checkpoint(&a, &b, None, k)
            .expect("checkpointing run")
            .unwrap_or_else(|| panic!("run should not drain before cycle {k}"));
        assert_eq!(ck.cycle(), k);
        assert_eq!(ck.version(), CHECKPOINT_VERSION);
        // Serialize → deserialize: resume must work from the persisted
        // form, not just the in-memory object.
        let bytes = ck.to_bytes();
        let ck = Checkpoint::from_bytes(&bytes).expect("round-trip");
        assert_eq!(ck.cycle(), k);
        let resumed = accel.try_run_from(&a, &b, &ck).expect("resume");
        assert_eq!(resumed.stats.total_cycles, total, "cycle count diverged at k={k}");
        assert_eq!(resumed.stats.breakdown, full.stats.breakdown, "breakdown diverged at k={k}");
        assert_eq!(resumed.stats.bytes_read, full.stats.bytes_read);
        assert_eq!(resumed.stats.bytes_written, full.stats.bytes_written);
        assert_eq!(resumed.c.row_ptr(), full.c.row_ptr());
        assert_eq!(resumed.c.col_idx(), full.c.col_idx());
        assert_eq!(value_bits(&resumed.c), value_bits(&full.c), "value bits diverged at k={k}");
    }
}

/// Replay determinism holds under an armed fault too: a bounded burst
/// refusal perturbs timing, and the checkpoint must carry the fault state
/// so the resumed run sees the identical perturbed timeline.
#[test]
fn faulted_run_resumes_bit_identically() {
    let (a, b) = test_matrices();
    let accel = accel();
    let plan = FaultPlan::sample(FaultKind::BurstRefusal, 5, 2);
    let full = accel.try_run_with_faults(&a, &b, Some(&plan)).expect("survivable fault");
    let k = full.stats.total_cycles / 3;
    let ck = accel
        .try_run_to_checkpoint(&a, &b, Some(&plan), k)
        .expect("checkpointing run")
        .expect("checkpoint");
    let resumed = accel.try_run_from(&a, &b, &ck).expect("resume");
    assert_eq!(resumed.stats.total_cycles, full.stats.total_cycles);
    assert_eq!(value_bits(&resumed.c), value_bits(&full.c));
}

/// `try_run_with_checkpoints` hands the last pre-failure checkpoint to
/// the caller, and disarming its fault state lets the resume complete —
/// the recovery ladder's resume rung, exercised end to end.
#[test]
fn disarmed_checkpoint_resumes_past_a_channel_stall() {
    let (a, b) = test_matrices();
    let mut cfg = MatRaptorConfig::small_test();
    cfg.watchdog_window = 2_000;
    let accel = Accelerator::new(cfg);
    let plan = FaultPlan::sample(FaultKind::ChannelStall, 7, 2);
    let failed = accel
        .try_run_with_checkpoints(&a, &b, Some(&plan), 256)
        .expect_err("a permanent stall must fail");
    assert!(matches!(failed.error, SimError::Deadlock(_)));
    let mut ck = failed.checkpoint.expect("checkpoints were taken before the wedge");
    ck.disarm_faults();
    let recovered = accel.try_run_from(&a, &b, &ck).expect("disarmed resume completes");
    // The timeline differs from a clean run (the stall was real until the
    // checkpoint), but the functional output must be correct.
    let clean = accel.try_run(&a, &b).expect("clean run");
    assert_eq!(recovered.c.row_ptr(), clean.c.row_ptr());
    assert_eq!(recovered.c.col_idx(), clean.c.col_idx());
    assert!(recovered.c.approx_eq(&clean.c, 1e-9));
}

/// Checkpoints are rejected loudly, never resumed wrongly: foreign
/// matrices, corrupted bytes, truncation, and future versions all fail
/// with the precise error.
#[test]
fn checkpoint_rejection_paths() {
    let (a, b) = test_matrices();
    let accel = accel();
    let ck = accel
        .try_run_to_checkpoint(&a, &b, None, 64)
        .expect("checkpointing run")
        .expect("checkpoint");

    // Wrong operands: fingerprint mismatch.
    let (other_a, other_b) = (gen::uniform(48, 48, 400, 90), gen::uniform(48, 48, 400, 91));
    match accel.try_run_from(&other_a, &other_b, &ck) {
        Err(SimError::CheckpointMismatch { .. }) => {}
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }

    // Wrong configuration: also a fingerprint mismatch.
    let mut cfg = MatRaptorConfig::small_test();
    cfg.coupling_fifo_depth += 1;
    match Accelerator::new(cfg).try_run_from(&a, &b, &ck) {
        Err(SimError::CheckpointMismatch { .. }) => {}
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }

    let bytes = ck.to_bytes();

    // Bit flip in the payload: checksum mismatch.
    let mut corrupted = bytes.clone();
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0x40;
    match Checkpoint::from_bytes(&corrupted) {
        Err(CheckpointError::ChecksumMismatch) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }

    // Truncation at any prefix: a structured error, never a panic.
    for cut in [0, 3, 15, 16, bytes.len() / 2, bytes.len() - 1] {
        assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
    }

    // Unknown future version.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
    match Checkpoint::from_bytes(&future) {
        Err(CheckpointError::UnsupportedVersion { found }) => {
            assert_eq!(found, CHECKPOINT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    // Wrong magic.
    let mut bad_magic = bytes;
    bad_magic[0] = b'X';
    match Checkpoint::from_bytes(&bad_magic) {
        Err(CheckpointError::BadMagic) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}
