//! Fault-campaign regression tests: the fallible run path must be
//! bit-identical to the legacy path when no faults are armed, and every
//! injected fault must terminate in a structured error or a survivable
//! outcome — never a hang, never a panic.

use matraptor_core::{
    classify, Accelerator, Driver, FaultKind, FaultPlan, MalformedInput, MatRaptorConfig, MtxWrite,
    RecoveryPolicy, SimError, Verdict,
};
use matraptor_sparse::{gen, spgemm, Csr};

fn test_matrices() -> (Csr<f64>, Csr<f64>) {
    (gen::uniform(48, 48, 400, 11), gen::uniform(48, 48, 400, 12))
}

fn campaign_config() -> MatRaptorConfig {
    let mut cfg = MatRaptorConfig::small_test();
    // Small window so deadlock faults are declared quickly in tests; the
    // longest legitimate bounded stall in this config is far shorter.
    cfg.watchdog_window = 2_000;
    cfg
}

/// With no faults armed, `try_run` is the same machine as `run`:
/// bit-identical output values and identical cycle counts.
#[test]
fn try_run_matches_run_bit_for_bit() {
    let (a, b) = test_matrices();
    let accel = Accelerator::new(campaign_config());
    let legacy = accel.run(&a, &b);
    let fallible = accel.try_run(&a, &b).expect("clean run");
    assert_eq!(fallible.stats.total_cycles, legacy.stats.total_cycles);
    assert_eq!(fallible.stats.breakdown, legacy.stats.breakdown);
    assert_eq!(fallible.c.row_ptr(), legacy.c.row_ptr());
    assert_eq!(fallible.c.col_idx(), legacy.c.col_idx());
    // Bit-identical, not approximately equal.
    let fa: Vec<u64> = fallible.c.values().iter().map(|v| v.to_bits()).collect();
    let la: Vec<u64> = legacy.c.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(fa, la);
}

#[test]
fn mismatched_inner_dimensions_are_a_structured_error() {
    let a = gen::uniform(16, 20, 60, 1);
    let b = gen::uniform(16, 16, 60, 2);
    let accel = Accelerator::new(campaign_config());
    match accel.try_run(&a, &b) {
        Err(SimError::MalformedInput(MalformedInput::InnerDimensionMismatch {
            a_cols,
            b_rows,
        })) => {
            assert_eq!((a_cols, b_rows), (20, 16));
        }
        other => panic!("expected dimension mismatch, got {other:?}"),
    }
}

/// A channel stalled forever must be declared a deadlock within the
/// watchdog window (plus the sampling stride), with a populated per-lane
/// diagnostic — the acceptance criterion of the fault harness.
#[test]
fn channel_stall_is_detected_as_deadlock_within_the_window() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let window = cfg.watchdog_window;
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let plan = FaultPlan::sample(FaultKind::ChannelStall, 3, lanes);
    match accel.try_run_with_faults(&a, &b, Some(&plan)) {
        Err(SimError::Deadlock(diag)) => {
            assert!(!diag.lanes.is_empty(), "per-lane diagnostic must be populated");
            assert_eq!(diag.lanes.len(), lanes);
            assert!(!diag.channels.is_empty());
            assert_eq!(diag.window, window);
            // Declared within the window plus the observation stride.
            assert!(diag.declared_at - diag.last_progress <= window + 64);
            // The wedge is real: at least one lane stopped progressing.
            assert!(!diag.stuck_lanes().is_empty());
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// A full sweep over every fault kind: no hangs, no panics, no escapes
/// for the fault kinds whose detection path is architectural (deadlock,
/// malformed stream, queue overflow).
#[test]
fn campaign_sweep_produces_no_undetected_escapes() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    for kind in FaultKind::ALL {
        for seed in 0..4u64 {
            let plan = FaultPlan::sample(kind, seed, lanes);
            let result = accel.try_run_with_faults(&a, &b, Some(&plan));
            let verdict = classify(kind, &result);
            assert_ne!(
                verdict,
                Verdict::Escaped,
                "{} seed {seed} escaped: {:?}",
                kind.name(),
                result.as_ref().map(|o| o.stats.total_cycles)
            );
        }
    }
}

/// The campaign is deterministic: the same seed reproduces the same fault
/// site, the same verdict, and (for surviving runs) the same cycle count.
#[test]
fn campaign_is_deterministic_across_sweeps() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let sweep = || -> Vec<(FaultKind, u64, usize, Verdict, Option<u64>)> {
        FaultKind::ALL
            .into_iter()
            .flat_map(|kind| {
                (0..3u64).map(move |seed| (kind, seed, FaultPlan::sample(kind, seed, lanes)))
            })
            .map(|(kind, seed, plan)| {
                let result = accel.try_run_with_faults(&a, &b, Some(&plan));
                let verdict = classify(kind, &result);
                let cycles = result.ok().map(|o| o.stats.total_cycles);
                (kind, seed, plan.site, verdict, cycles)
            })
            .collect()
    };
    assert_eq!(sweep(), sweep());
}

/// The recovery ladder is replay-deterministic: for every fault kind and
/// seed, two independent `launch_with_policy` runs produce the same
/// attempt trail (rungs, backoffs, recorded faults), the same summary
/// flags, the same final verdict, and — when the ladder recovers —
/// bit-identical output values and cycle counts. This is the property the
/// service layer's strict campaign mode leans on.
#[test]
fn recovery_ladder_replays_bit_identically_for_every_fault_kind() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let policy = RecoveryPolicy {
        max_attempts: 3,
        backoff_base_cycles: 500,
        checkpoint_interval: Some(1_024),
    };

    // One launch, fully summarised: the Ok side keeps the trail plus the
    // output bits and cycles; the Err side keeps the structured fault.
    // Everything inside derives Eq, so replays compare exactly.
    let launch = |kind: FaultKind, seed: u64| {
        let accel = Accelerator::new(campaign_config());
        let mut driver = Driver::new(&accel);
        driver.mtx(MtxWrite::ARows(a.rows() as u64));
        driver.mtx(MtxWrite::BRows(b.rows() as u64));
        driver.mtx(MtxWrite::X0(1));
        let plan = FaultPlan::sample(kind, seed, lanes);
        match driver.launch_with_policy(&a, &b, Some(&plan), &policy) {
            Ok((outcome, report)) => {
                let bits: Vec<u64> = outcome.c.values().iter().map(|v| v.to_bits()).collect();
                Ok((report, outcome.stats.total_cycles, bits))
            }
            Err(e) => Err(format!("{e:?}")),
        }
    };

    for kind in FaultKind::ALL {
        for seed in 0..3u64 {
            let first = launch(kind, seed);
            let second = launch(kind, seed);
            assert_eq!(first, second, "{} seed {seed}: recovery replay diverged", kind.name());
            // The trail itself must be reproducible in shape, not just as
            // a whole: same rung sequence both times.
            if let (Ok((r1, _, _)), Ok((r2, _, _))) = (&first, &second) {
                let rungs1: Vec<_> = r1.trail.iter().map(|t| t.action).collect();
                let rungs2: Vec<_> = r2.trail.iter().map(|t| t.action).collect();
                assert_eq!(rungs1, rungs2);
                assert_eq!(r1.attempts as usize, r1.trail.len());
            }
        }
    }
}

/// A forced sorting-queue overflow with the CPU fallback disabled is a
/// structured `QueueOverflow`, naming the lane and row.
#[test]
fn forced_queue_overflow_is_reported_with_lane_and_row() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let plan = FaultPlan::sample(FaultKind::QueueOverflowForce, 1, lanes);
    match accel.try_run_with_faults(&a, &b, Some(&plan)) {
        Err(SimError::QueueOverflow { lane, row }) => {
            assert!(lane < lanes);
            assert!((row as usize) < a.rows());
        }
        other => panic!("expected queue overflow, got {other:?}"),
    }
}

/// A corrupted A stream (column id pushed out of B's row space) is caught
/// at the SpBL boundary before it turns into a wild fetch.
#[test]
fn corrupted_stream_is_rejected_at_the_spbl_boundary() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let plan = FaultPlan::sample(FaultKind::StreamCorruption, 2, lanes);
    match accel.try_run_with_faults(&a, &b, Some(&plan)) {
        Err(SimError::MalformedInput(MalformedInput::ColumnOutOfRange { col, bound, .. })) => {
            assert!(col >= bound);
            assert_eq!(bound as usize, b.rows());
        }
        other => panic!("expected out-of-range column, got {other:?}"),
    }
}

/// ABFT alone (no full Gustavson cross-check) detects silent data
/// corruption, and localises it: a dropped writer append surfaces as
/// `OutputCorrupted` with a non-empty offending-row set.
#[test]
fn abft_catches_dropped_write_without_the_reference_check() {
    let (a, b) = test_matrices();
    let mut cfg = campaign_config();
    cfg.verify_against_reference = false;
    cfg.abft_verification = true;
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let mut localised = 0;
    for seed in 0..4u64 {
        let plan = FaultPlan::sample(FaultKind::DroppedWrite, seed, lanes);
        match accel.try_run_with_faults(&a, &b, Some(&plan)) {
            Err(SimError::OutputCorrupted { rows, .. }) => {
                assert!(!rows.is_empty(), "ABFT must name the corrupted rows");
                assert!(rows.iter().all(|&r| (r as usize) < a.rows()));
                localised += 1;
            }
            Err(SimError::Deadlock(_)) => {} // a dropped metadata write can wedge the drain
            other => panic!("expected localised OutputCorrupted, got {other:?}"),
        }
    }
    assert!(localised >= 1, "at least one seed must reach the ABFT check");
}

/// The hole ABFT closes: with *all* output verification disabled, silent
/// corruption kinds complete "successfully" with a wrong answer — the
/// escape the strict campaign gate now forbids.
#[test]
fn silent_corruption_escapes_without_any_verification() {
    let (a, b) = test_matrices();
    let mut cfg = campaign_config();
    cfg.verify_against_reference = false;
    cfg.abft_verification = false;
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let reference = spgemm::gustavson(&a, &b);
    let mut escapes = 0;
    for kind in [FaultKind::DroppedWrite, FaultKind::StreamTruncation] {
        for seed in 0..4u64 {
            let plan = FaultPlan::sample(kind, seed, lanes);
            let result = accel.try_run_with_faults(&a, &b, Some(&plan));
            if classify(kind, &result) == Verdict::Escaped {
                let outcome = result.expect("an escape is an Ok result");
                assert!(
                    !outcome.c.approx_eq(&reference, 1e-9),
                    "{} seed {seed}: escaped run should carry a wrong answer",
                    kind.name()
                );
                escapes += 1;
            }
        }
    }
    assert!(escapes >= 1, "without verification these kinds must escape");
}

/// Faulty runs still verify their output: a silently dropped writer
/// append surfaces as `OutputCorrupted`, not as a wrong answer.
#[test]
fn dropped_write_is_caught_by_output_verification() {
    let (a, b) = test_matrices();
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let mut caught = 0;
    for seed in 0..4u64 {
        let plan = FaultPlan::sample(FaultKind::DroppedWrite, seed, lanes);
        match accel.try_run_with_faults(&a, &b, Some(&plan)) {
            Err(SimError::OutputCorrupted { .. }) | Err(SimError::Deadlock(_)) => caught += 1,
            Err(other) => panic!("unexpected error for dropped write: {other:?}"),
            Ok(_) => panic!("dropped write escaped verification"),
        }
    }
    assert_eq!(caught, 4);
    // And the reference still matches once the fault is gone.
    let clean = accel.try_run(&a, &b).expect("clean");
    assert!(clean.c.approx_eq(&spgemm::gustavson(&a, &b), 1e-9));
}
