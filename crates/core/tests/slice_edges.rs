//! Slice-run edge cases the threaded executor hits in practice: jobs with
//! no work at all (zero-row / all-empty operands), zero-length slices,
//! a checkpoint taken at the *final* cycle of a slice, and the
//! re-dispatch race where a worker dies between completing a slice and
//! acking it. The last one is what makes the fleet's at-most-once
//! accounting *sound*: the duplicate it suppresses is guaranteed to be
//! byte-identical to the result it kept, so suppression never hides a
//! divergent answer.

use matraptor_core::{Accelerator, MatRaptorConfig, SliceRun};
use matraptor_sparse::{gen, Csr};

fn accel() -> Accelerator {
    Accelerator::new(MatRaptorConfig::small_test())
}

fn value_bits(c: &Csr<f64>) -> Vec<u64> {
    c.values().iter().map(|v| v.to_bits()).collect()
}

/// A job with no multiply work — an all-empty A, and the harsher 0-row A —
/// still drains through the slice path: a single generous slice completes
/// it, and tiny slices (which checkpoint a machine that never had real
/// work) chain to the same empty product instead of wedging.
#[test]
fn zero_row_operands_drain_through_the_slice_path() {
    let accel = accel();
    let b = gen::uniform(16, 16, 80, 7);
    for a in [Csr::zero(16, 16), Csr::zero(0, 16)] {
        let full = accel.try_run(&a, &b).expect("empty product");
        assert_eq!(full.c.nnz(), 0);
        let total = full.stats.total_cycles;
        match accel.try_run_slice(&a, &b, None, None, total + 1).expect("one generous slice") {
            SliceRun::Completed(out) => {
                assert_eq!(out.c.rows(), a.rows());
                assert_eq!(out.c.nnz(), 0);
                assert_eq!(out.stats.total_cycles, total);
            }
            SliceRun::Paused(ck) => {
                panic!("a no-work job paused at cycle {} instead of completing", ck.cycle())
            }
        }
        // Tiny slices: every pause checkpoints a no-work machine, and the
        // chain must terminate at exactly the uninterrupted cycle count.
        let mut ck = None;
        let mut boundary = 2;
        let out = loop {
            assert!(boundary <= total + 2, "empty job still pausing past its drain cycle");
            match accel.try_run_slice(&a, &b, None, ck.as_deref(), boundary).expect("tiny slice") {
                SliceRun::Completed(out) => break out,
                SliceRun::Paused(next) => ck = Some(next),
            }
            boundary += 2;
        };
        assert_eq!(out.c.nnz(), 0);
        assert_eq!(out.stats.total_cycles, total);
    }
}

/// `until_cycle = 0` is a legal zero-length slice: the machine pauses
/// before executing anything, and the cycle-0 checkpoint resumes to a run
/// bit-identical to the uninterrupted one.
#[test]
fn zero_length_slice_pauses_at_cycle_zero_and_resumes_identically() {
    let accel = accel();
    let a = gen::uniform(48, 48, 400, 11);
    let b = gen::uniform(48, 48, 400, 12);
    let full = accel.try_run(&a, &b).expect("clean run");
    let ck = match accel.try_run_slice(&a, &b, None, None, 0).expect("zero-length slice") {
        SliceRun::Paused(ck) => ck,
        SliceRun::Completed(_) => panic!("a zero-length slice cannot complete a real job"),
    };
    assert_eq!(ck.cycle(), 0, "nothing executed before the pause");
    let resumed = accel.try_run_from(&a, &b, &ck).expect("resume from cycle 0");
    assert_eq!(resumed.stats.total_cycles, full.stats.total_cycles);
    assert_eq!(resumed.c.row_ptr(), full.c.row_ptr());
    assert_eq!(resumed.c.col_idx(), full.c.col_idx());
    assert_eq!(value_bits(&resumed.c), value_bits(&full.c));
}

/// A slice boundary landing one cycle short of the drain produces a
/// checkpoint at the final executed cycle; the next slice performs the
/// single remaining step and must finalize bit-identically to the
/// uninterrupted run.
#[test]
fn checkpoint_at_the_final_cycle_of_a_slice_resumes_identically() {
    let accel = accel();
    let a = gen::uniform(48, 48, 400, 11);
    let b = gen::uniform(48, 48, 400, 12);
    let full = accel.try_run(&a, &b).expect("clean run");
    let total = full.stats.total_cycles;
    assert!(total > 2, "test matrices should do real work");
    let ck = match accel.try_run_slice(&a, &b, None, None, total - 1).expect("penultimate slice") {
        SliceRun::Paused(ck) => ck,
        SliceRun::Completed(out) => panic!(
            "the run drained in {} cycles inside a {}-cycle slice",
            out.stats.total_cycles,
            total - 1
        ),
    };
    assert_eq!(ck.cycle(), total - 1, "paused exactly at the slice boundary");
    match accel.try_run_slice(&a, &b, None, Some(&ck), total + 1).expect("final slice") {
        SliceRun::Completed(out) => {
            assert_eq!(out.stats.total_cycles, total);
            assert_eq!(out.c.row_ptr(), full.c.row_ptr());
            assert_eq!(out.c.col_idx(), full.c.col_idx());
            assert_eq!(value_bits(&out.c), value_bits(&full.c));
        }
        SliceRun::Paused(ck) => {
            panic!("one remaining cycle paused again at {}", ck.cycle())
        }
    }
}

/// The lost-ack race, at the slice level: a worker completes the final
/// slice, dies before acking, and the supervisor re-dispatches the same
/// checkpoint to a *different* worker (a separately constructed,
/// identically configured accelerator). Both completions must be
/// byte-identical — the precondition for the fleet's at-most-once
/// accounting to suppress the duplicate without ever hiding a divergent
/// result.
#[test]
fn redispatched_final_slice_is_byte_identical_on_a_second_worker() {
    let a = gen::uniform(48, 48, 400, 11);
    let b = gen::uniform(48, 48, 400, 12);
    let first_worker = accel();
    let full = first_worker.try_run(&a, &b).expect("clean run");
    let total = full.stats.total_cycles;
    let ck =
        match first_worker.try_run_slice(&a, &b, None, None, total - 1).expect("penultimate slice")
        {
            SliceRun::Paused(ck) => ck,
            SliceRun::Completed(_) => panic!("run drained a cycle early"),
        };
    // The checkpoint survives the wire (re-dispatch serializes it).
    let ck = matraptor_core::Checkpoint::from_bytes(&ck.to_bytes()).expect("round-trip");
    let run_final_slice = |worker: &Accelerator| match worker
        .try_run_slice(&a, &b, None, Some(&ck), total + 1)
        .expect("final slice")
    {
        SliceRun::Completed(out) => out,
        SliceRun::Paused(ck) => panic!("final slice paused at {}", ck.cycle()),
    };
    let acked = run_final_slice(&first_worker);
    let second_worker = accel();
    let duplicate = run_final_slice(&second_worker);
    assert_eq!(duplicate.stats.total_cycles, acked.stats.total_cycles);
    assert_eq!(duplicate.stats.breakdown, acked.stats.breakdown);
    assert_eq!(duplicate.c.row_ptr(), acked.c.row_ptr());
    assert_eq!(duplicate.c.col_idx(), acked.c.col_idx());
    assert_eq!(value_bits(&duplicate.c), value_bits(&acked.c));
    assert_eq!(value_bits(&acked.c), value_bits(&full.c), "and both match the clean run");
}
