//! Observability-layer invariants, swept property-style.
//!
//! Two contracts from DESIGN.md §11:
//!
//! 1. **Attribution totality** — every stage of every lane charges exactly
//!    one of busy / mem-stall / queue-stall / idle per cycle, so the four
//!    buckets sum to the run's total cycles. Checked for every matrix of
//!    the Table II synthetic suite on clean runs, and for every injected
//!    fault kind on runs the machine survives.
//! 2. **Zero overhead when disabled** — tracing is observational: a traced
//!    run's outcome (cycles, stats, output bits) is identical to the
//!    untraced run, and the attribution counters ride checkpoints so
//!    strict replay covers them.

use matraptor_core::{
    Accelerator, FaultKind, FaultPlan, LaneAttribution, MatRaptorConfig, TraceConfig,
};
use matraptor_sparse::gen::suite::table2;
use matraptor_sparse::{gen, Csr};

fn campaign_config() -> MatRaptorConfig {
    let mut cfg = MatRaptorConfig::small_test();
    cfg.watchdog_window = 2_000;
    cfg
}

fn assert_totality(ctx: &str, attrs: &[LaneAttribution], total_cycles: u64) {
    assert!(!attrs.is_empty(), "{ctx}: no per-lane attribution recorded");
    for (lane, attr) in attrs.iter().enumerate() {
        for (stage, b) in attr.stages() {
            assert_eq!(
                b.total(),
                total_cycles,
                "{ctx}: lane{lane}.{stage} buckets {:?} must sum to total cycles",
                b.as_array()
            );
        }
    }
}

/// Clean runs across the full synthetic suite: totality holds for every
/// matrix, and the windowed trace reassembles to the cumulative counters.
#[test]
fn attribution_buckets_sum_to_total_cycles_across_the_suite() {
    let accel = Accelerator::new(campaign_config());
    let tcfg = TraceConfig { window: 128, ..TraceConfig::default() };
    for spec in table2() {
        let m = spec.generate(512, 7);
        let (outcome, trace) = accel
            .try_run_traced(&m, &m, None, &tcfg)
            .unwrap_or_else(|e| panic!("clean traced run failed on `{}`: {e}", spec.id));
        let stats = &outcome.stats;
        assert_totality(spec.id, &stats.per_lane_attribution, stats.total_cycles);
        assert_eq!(trace.total_cycles, stats.total_cycles);
        // Window deltas are a lossless decomposition of the cumulative
        // buckets: per stage, their sum is again the total cycle count.
        for lane in &trace.lanes {
            for pick in 0..4usize {
                let windowed: u64 = lane
                    .windows
                    .iter()
                    .map(|w| [w.spal, w.spbl, w.pe, w.writer][pick].iter().sum::<u64>())
                    .sum();
                assert_eq!(
                    windowed, stats.total_cycles,
                    "{}: lane{} stage {pick} windowed deltas lost cycles",
                    spec.id, lane.lane
                );
            }
        }
    }
}

/// Tracing is purely observational: the traced run's cycles, stats, and
/// output bits equal the untraced run's on the same inputs.
#[test]
fn traced_runs_are_bit_identical_to_untraced_runs() {
    let accel = Accelerator::new(campaign_config());
    let tcfg = TraceConfig::default();
    for spec in table2().into_iter().take(4) {
        let m = spec.generate(512, 9);
        let plain = accel.try_run(&m, &m).expect("clean run");
        let (traced, _) = accel.try_run_traced(&m, &m, None, &tcfg).expect("clean traced run");
        assert_eq!(traced.stats, plain.stats, "{}: stats diverged under tracing", spec.id);
        assert_eq!(traced.c.row_ptr(), plain.c.row_ptr());
        assert_eq!(traced.c.col_idx(), plain.c.col_idx());
        let tb: Vec<u64> = traced.c.values().iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = plain.c.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(tb, pb, "{}: output bits diverged under tracing", spec.id);
    }
}

/// Totality under adversity: for every fault kind, any run the machine
/// completes still satisfies the invariant — injected stalls, refusals,
/// and overflows shift cycles *between* buckets, never out of them.
#[test]
fn attribution_totality_survives_every_fault_kind() {
    let cfg = campaign_config();
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);
    let a: Csr<f64> = gen::uniform(48, 48, 400, 11);
    let b: Csr<f64> = gen::uniform(48, 48, 400, 12);
    let mut completed = 0usize;
    for kind in FaultKind::ALL {
        for seed in 0..4u64 {
            let plan = FaultPlan::sample(kind, 11 ^ seed, lanes);
            // Detected faults abort without stats — nothing to check; any
            // run that *completes* must still account for every cycle.
            if let Ok(outcome) = accel.try_run_with_faults(&a, &b, Some(&plan)) {
                completed += 1;
                assert_totality(
                    &format!("{}/seed{}", kind.name(), seed),
                    &outcome.stats.per_lane_attribution,
                    outcome.stats.total_cycles,
                );
            }
        }
    }
    assert!(completed > 0, "no faulted run completed; the sweep checked nothing");
}

/// Attribution counters ride checkpoints: a run paused mid-flight and
/// resumed reports the same buckets as the uninterrupted run.
#[test]
fn attribution_survives_checkpoint_restore() {
    let accel = Accelerator::new(campaign_config());
    let a: Csr<f64> = gen::uniform(48, 48, 400, 21);
    let b: Csr<f64> = gen::uniform(48, 48, 400, 22);
    let full = accel.try_run(&a, &b).expect("clean run");
    let half = full.stats.total_cycles / 2;
    let ck = accel
        .try_run_to_checkpoint(&a, &b, None, half)
        .expect("checkpointing run")
        .expect("run reaches the halfway cycle");
    let ck = matraptor_core::Checkpoint::from_bytes(&ck.to_bytes()).expect("round-trip");
    let resumed = accel.try_run_from(&a, &b, &ck).expect("resume");
    assert_eq!(
        resumed.stats.per_lane_attribution, full.stats.per_lane_attribution,
        "attribution buckets must be identical across pause/serialize/resume"
    );
    assert_totality("resumed", &resumed.stats.per_lane_attribution, resumed.stats.total_cycles);
}
