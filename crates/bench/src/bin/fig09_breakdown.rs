//! Fig. 9 — Performance breakdown (A×A).
//!
//! For each Table II matrix, prints the fraction of PE cycles spent with
//! the multipliers busy vs stalled on merge vs stalled on memory, plus the
//! Phase I / Phase II cycle ratio (the paper observes it in [2, 15] and
//! uses that to justify the double-buffered queue sets).
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fig09_breakdown -- [--scale N] [--seed N] [--json]`

use matraptor_bench::{load_suite, print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};

fn main() {
    let opts = Options::from_args();
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let accel = Accelerator::new(cfg);

    println!("Fig. 9 — PE cycle breakdown for A x A (scale 1/{})\n", opts.scale);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for m in load_suite(&opts) {
        let outcome = accel.run(&m.matrix, &m.matrix);
        let s = &outcome.stats;
        let (busy, merge, mem, idle) = s.breakdown.fractions();
        rows.push(vec![
            m.spec.id.to_string(),
            format!("{:.1}%", busy * 100.0),
            format!("{:.1}%", merge * 100.0),
            format!("{:.1}%", mem * 100.0),
            format!("{:.1}%", idle * 100.0),
            format!("{:.1}", s.phase_ratio()),
            format!("{}", s.total_cycles),
        ]);
        json_rows.push(format!(
            "{{\"id\":\"{}\",\"busy\":{busy},\"merge_stall\":{merge},\"memory_stall\":{mem},\"idle\":{idle},\"phase_ratio\":{}}}",
            m.spec.id,
            s.phase_ratio()
        ));
    }
    print_table(
        &["matrix", "busy", "merge stall", "memory stall", "idle", "phaseI/II", "cycles"],
        &rows,
    );
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
}
