//! True-parallel fleet campaign: 10k+ jobs on real OS threads, gated
//! against the discrete-event fleet oracle.
//!
//! Drives [`matraptor_service::parallel`] — N `std::thread` accelerator
//! workers behind the lock-free dispatch ring (DESIGN.md §15) — over the
//! same seeded job stream at every requested thread count, while a
//! scripted [`WorkerFaultPlan`] injects panics, hangs, a terminal
//! slowdown, and a lost-ack crash into the worker bodies. Every fault
//! must be recovered through the restart ladder at full lane width, so
//! the **resolution core** — the id-sorted `(job id, disposition, output
//! fingerprint)` triples — is byte-identical no matter how many threads
//! ran the campaign or how the OS scheduled them.
//!
//! The oracle is the discrete-event [`Fleet`] (DESIGN.md §13): the same
//! operand stream submitted to a clean simulated fleet, whose resolution
//! core must hash to the same value. The oracle runs in simulated time
//! with zero wall-clock nondeterminism, so agreement pins the threaded
//! executor's merge, at-most-once accounting, and recovery paths all at
//! once.
//!
//! `--strict` additionally requires, per threaded run: at least one
//! injected panic caught (never a process abort), one hang detected by
//! the heartbeat supervisor, one terminal slowdown recycled, one lost-ack
//! duplicate suppressed, zero double-completions, zero degraded-width
//! completions (recovery stayed on the full-width restart rung), and zero
//! retirements; plus zero ABFT escapes and a fully-drained queue on the
//! oracle side.
//!
//! Wall-clock throughput per thread count goes to `BENCH_par.json` —
//! outside the deterministic report, because wall time is not
//! reproducible.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin par_campaign --
//! [--seed N|0xN] [--jobs N] [--threads 1,2,4,8] [--json] [--strict]
//! [--bench-out PATH]`

use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use matraptor_core::MatRaptorConfig;
use matraptor_service::{
    parallel, BreakerConfig, DeadlinePolicy, Fleet, FleetConfig, JobSpec, ParJob, ParReport,
    ParallelConfig, ServiceConfig, TenantConfig, TenantId, WorkerFault, WorkerFaultEvent,
    WorkerFaultPlan,
};
use matraptor_sim::trace::fnv1a64;
use matraptor_sparse::{gen, rng::ChaCha8Rng, Csr};

struct Options {
    seed: u64,
    jobs: u64,
    threads: Vec<usize>,
    json: bool,
    strict: bool,
    bench_out: Option<String>,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 0xCAFE,
        jobs: 10_000,
        threads: vec![1, 2, 4, 8],
        json: false,
        strict: false,
        bench_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| parse_u64(&v))
                    .expect("--seed needs an integer (decimal or 0x-hex)")
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| parse_u64(&v))
                    .expect("--jobs needs an integer (decimal or 0x-hex)")
                    .max(1)
            }
            "--threads" => {
                let list = args.next().expect("--threads needs a comma-separated list");
                opts.threads = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().expect("--threads entries are integers"))
                    .map(|t| t.max(1))
                    .collect();
                assert!(!opts.threads.is_empty(), "--threads list is empty");
            }
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--bench-out" => {
                opts.bench_out = Some(args.next().expect("--bench-out needs a path"))
            }
            other => panic!(
                "unknown argument {other}; supported: --seed N --jobs N --threads LIST --json --strict --bench-out PATH"
            ),
        }
    }
    opts
}

/// The accelerator template — identical for the threaded workers and the
/// oracle fleet's simulated workers, because output value bits depend on
/// the lane width (accumulation order).
fn accel_config() -> MatRaptorConfig {
    let mut accel = MatRaptorConfig::small_test();
    accel.watchdog_window = 2_000;
    accel.verify_against_reference = false;
    accel.abft_verification = true;
    accel
}

/// Operand pool: square matrices grouped by dimension class so any two
/// picks from one class multiply. Generated once, wrapped separately for
/// the threaded executor (`Arc`) and the single-threaded oracle (`Rc`).
struct Pool {
    arcs: Vec<Vec<Arc<Csr<f64>>>>,
    rcs: Vec<Vec<Rc<Csr<f64>>>>,
}

impl Pool {
    fn build(seed: u64) -> Pool {
        let dims = [24usize, 32, 48];
        let per_class = 4;
        let mats: Vec<Vec<Csr<f64>>> = dims
            .iter()
            .enumerate()
            .map(|(c, &n)| {
                (0..per_class)
                    .map(|i| {
                        let s = seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((c * per_class + i) as u64);
                        gen::uniform(n, n, n * 6, s)
                    })
                    .collect()
            })
            .collect();
        let arcs =
            mats.iter().map(|class| class.iter().map(|m| Arc::new(m.clone())).collect()).collect();
        let rcs = mats.into_iter().map(|class| class.into_iter().map(Rc::new).collect()).collect();
        Pool { arcs, rcs }
    }
}

/// The seeded pick sequence `(class, a, b)` — computed once so the
/// threaded runs and the oracle consume the identical operand stream.
fn pick_stream(pool: &Pool, seed: u64, jobs: u64) -> Vec<(usize, usize, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..jobs)
        .map(|_| {
            let c = rng.gen_range(0..pool.arcs.len());
            let n = pool.arcs[c].len();
            (c, rng.gen_range(0..n), rng.gen_range(0..n))
        })
        .collect()
}

/// The per-thread-count injection schedule. Every fault must recover on
/// the full-width restart rung (the strict gate asserts zero
/// degraded-width completions), so the budget is generous. Thresholds are
/// cumulative slices per worker slot, spaced so they fire in order even
/// when several land on the same slot (`threads == 1`).
fn fault_script(threads: usize) -> WorkerFaultPlan {
    WorkerFaultPlan::new(vec![
        WorkerFaultEvent { worker: 0, after_slices: 8, kind: WorkerFault::Crash },
        WorkerFaultEvent { worker: 1 % threads, after_slices: 24, kind: WorkerFault::Hang },
        WorkerFaultEvent {
            worker: 2 % threads,
            after_slices: 40,
            kind: WorkerFault::SlowDown { factor: 12 },
        },
        WorkerFaultEvent {
            worker: 3 % threads,
            after_slices: 56,
            kind: WorkerFault::CrashAfterCompletion,
        },
    ])
}

fn par_config(threads: usize) -> ParallelConfig {
    let mut cfg = ParallelConfig::small_test();
    cfg.accel = accel_config();
    cfg.threads = threads;
    cfg.max_restarts = 16;
    cfg.max_degraded_restarts = 1;
    cfg.worker_faults = Some(fault_script(threads));
    cfg
}

fn run_threaded(
    opts: &Options,
    pool: &Pool,
    picks: &[(usize, usize, usize)],
    threads: usize,
) -> ParReport {
    let jobs: Vec<ParJob> = picks
        .iter()
        .enumerate()
        .map(|(j, &(c, ai, bi))| ParJob {
            id: j as u64,
            a: Arc::clone(&pool.arcs[c][ai]),
            b: Arc::clone(&pool.arcs[c][bi]),
            plan: None,
            deadline_cycles: u64::MAX,
        })
        .collect();
    let _ = opts;
    parallel::run(par_config(threads), jobs).expect("threaded campaign run")
}

struct OracleResult {
    fingerprint: u64,
    resolved: u64,
    escapes: u64,
    pending_at_end: usize,
    non_completed: u64,
    final_cycle: u64,
}

/// The discrete-event oracle: the same operand stream through a clean
/// simulated [`Fleet`] (no worker faults, no input faults, loose
/// deadlines), reduced to the same resolution core.
fn run_oracle(pool: &Pool, picks: &[(usize, usize, usize)]) -> OracleResult {
    const TARGET_BACKLOG: usize = 24;
    let service = ServiceConfig {
        accel: accel_config(),
        tenants: vec![TenantConfig {
            name: "par".to_string(),
            weight: 1,
            queue_capacity: 64,
            deadline: DeadlinePolicy { base_cycles: 2_000_000, cycles_per_flop: 400 },
        }],
        quantum_cycles: 200_000,
        breaker: BreakerConfig {
            failure_threshold: 4,
            cooldown_cycles: 600_000,
            max_backoff_doublings: 4,
        },
        quarantine_threshold: 2,
        max_attempts: 2,
        cpu_cycles_per_flop: 64,
    };
    let cfg = FleetConfig {
        service,
        accel_workers: 4,
        cpu_workers: 1,
        slice_cycles: 4_096,
        heartbeat_window: 150_000,
        restart_cycles: 50_000,
        max_restarts: 1,
        max_degraded_restarts: 1,
        worker_faults: None,
        recovery_log_cap: 4_096,
    };
    let mut fleet = Fleet::new(cfg).expect("oracle fleet config is valid");
    for (j, &(c, ai, bi)) in picks.iter().enumerate() {
        let spec = JobSpec {
            tenant: TenantId(0),
            a: Rc::clone(&pool.rcs[c][ai]),
            b: Rc::clone(&pool.rcs[c][bi]),
            plan: None,
        };
        let id = fleet.submit(spec).expect("oracle submission (clean stream, managed backlog)");
        assert_eq!(id.0, j as u64, "oracle ids must align with the threaded stream");
        while fleet.pending() > TARGET_BACKLOG {
            if !fleet.step() {
                break;
            }
        }
    }
    fleet.run_to_idle();

    let mut core: Vec<(u64, &'static str, Option<u64>)> = fleet
        .records()
        .iter()
        .map(|r| (r.record.id.0, r.record.disposition.label(), r.output_fingerprint))
        .collect();
    core.sort_unstable_by_key(|&(id, _, _)| id);
    let non_completed = core.iter().filter(|&&(_, label, _)| label != "completed").count() as u64;
    OracleResult {
        fingerprint: parallel::resolution_core_fingerprint(core.into_iter()),
        resolved: fleet.records().len() as u64,
        escapes: fleet.counters().escapes,
        pending_at_end: fleet.pending(),
        non_completed,
        final_cycle: fleet.now().0,
    }
}

fn counters_json(r: &ParReport) -> String {
    let c = &r.counters;
    format!(
        "{{\"panics_caught\":{},\"injected_panics\":{},\"injected_hangs\":{},\"injected_slowdowns\":{},\"injected_lost_acks\":{},\"hangs_detected\":{},\"slowness_detections\":{},\"worker_restarts\":{},\"worker_degradations\":{},\"worker_retirements\":{},\"redispatches\":{},\"resumed_from_checkpoint\":{},\"restarted_from_scratch\":{},\"duplicates_suppressed\":{},\"duplicate_completions\":{},\"degraded_completions\":{},\"inline_fallbacks\":{},\"wedged_threads\":{},\"recovery_events_dropped\":{},\"panic_census\":{}}}",
        c.panics_caught,
        c.injected_panics,
        c.injected_hangs,
        c.injected_slowdowns,
        c.injected_lost_acks,
        c.hangs_detected,
        c.slowness_detections,
        c.worker_restarts,
        c.worker_degradations,
        c.worker_retirements,
        c.redispatches,
        c.resumed_from_checkpoint,
        c.restarted_from_scratch,
        c.duplicates_suppressed,
        c.duplicate_completions,
        c.degraded_completions,
        c.inline_fallbacks,
        c.wedged_threads,
        r.recovery_events_dropped,
        r.panic_census.len(),
    )
}

fn main() {
    let opts = parse_args();
    println!(
        "Parallel campaign — seed {:#x}, {} jobs, thread counts {:?}\n",
        opts.seed, opts.jobs, opts.threads
    );
    let pool = Pool::build(opts.seed);
    let picks = pick_stream(&pool, opts.seed, opts.jobs);

    println!("running discrete-event oracle fleet ...");
    let oracle_start = Instant::now();
    let oracle = run_oracle(&pool, &picks);
    let oracle_wall = oracle_start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "oracle: {} resolved, fingerprint {:#018x} ({:.1}s, {:.0} jobs/s simulated-fleet)\n",
        oracle.resolved,
        oracle.fingerprint,
        oracle_wall,
        oracle.resolved as f64 / oracle_wall
    );

    let mut runs: Vec<(usize, ParReport, f64)> = Vec::new();
    for &t in &opts.threads {
        println!("running threaded executor at {t} thread(s) ...");
        let start = Instant::now();
        let report = run_threaded(&opts, &pool, &picks, t);
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        println!(
            "  {} resolved, fingerprint {:#018x}, {} panic(s) caught, {} hang(s), {} slowdown(s), {} lost-ack(s) ({:.1}s, {:.0} jobs/s)",
            report.records.len(),
            report.resolution_fingerprint(),
            report.counters.panics_caught,
            report.counters.hangs_detected,
            report.counters.slowness_detections,
            report.counters.duplicates_suppressed,
            wall,
            report.records.len() as f64 / wall
        );
        runs.push((t, report, wall));
    }
    println!();

    let fingerprints: Vec<u64> = runs.iter().map(|(_, r, _)| r.resolution_fingerprint()).collect();
    let all_equal = fingerprints.windows(2).all(|w| w[0] == w[1]);
    let matches_oracle = fingerprints.iter().all(|&f| f == oracle.fingerprint);
    println!(
        "resolution core: {} across thread counts, {} the oracle",
        if all_equal { "IDENTICAL" } else { "DIVERGENT" },
        if matches_oracle { "MATCHES" } else { "DOES NOT MATCH" }
    );

    // ---- deterministic report (no wall-clock fields) ----
    let run_objects: Vec<String> = runs
        .iter()
        .map(|(t, r, _)| {
            format!(
                "{{\"threads\":{t},\"resolved\":{},\"resolution_fingerprint\":\"{:#018x}\",\"counters\":{}}}",
                r.records.len(),
                r.resolution_fingerprint(),
                counters_json(r)
            )
        })
        .collect();
    let body = format!(
        "{{\"campaign\":{{\"seed\":{},\"jobs\":{},\"thread_counts\":[{}]}},\
\"oracle\":{{\"resolved\":{},\"escapes\":{},\"pending_at_end\":{},\"non_completed\":{},\"final_cycle\":{},\"resolution_fingerprint\":\"{:#018x}\"}},\
\"runs\":[{}],\
\"gate\":{{\"cores_identical_across_threads\":{all_equal},\"core_matches_oracle\":{matches_oracle}}}",
        opts.seed,
        opts.jobs,
        opts.threads.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(","),
        oracle.resolved,
        oracle.escapes,
        oracle.pending_at_end,
        oracle.non_completed,
        oracle.final_cycle,
        oracle.fingerprint,
        run_objects.join(","),
    );
    let json = format!("{body},\"report_fnv1a\":\"{:#018x}\"}}", fnv1a64(body.as_bytes()));
    if opts.json {
        println!("\n{json}");
    }

    // Wall-clock scaling goes in its own file, outside the deterministic
    // report.
    let scaling: Vec<String> = runs
        .iter()
        .map(|(t, r, wall)| {
            format!(
                "{{\"threads\":{t},\"wall_seconds\":{wall:.3},\"jobs_per_wall_second\":{:.1}}}",
                r.records.len() as f64 / wall
            )
        })
        .collect();
    let bench_json = format!(
        "{{\"bench\":\"par_campaign\",\"seed\":{},\"jobs\":{},\"oracle_wall_seconds\":{oracle_wall:.3},\"runs\":[{}]}}",
        opts.seed,
        opts.jobs,
        scaling.join(",")
    );
    let bench_path = opts.bench_out.as_deref().unwrap_or("BENCH_par.json");
    if let Err(e) = std::fs::write(bench_path, format!("{bench_json}\n")) {
        eprintln!("warning: could not write {bench_path}: {e}");
    } else {
        println!("wrote {bench_path}");
    }

    if opts.strict {
        let mut failures: Vec<String> = Vec::new();
        if !all_equal {
            failures.push("resolution core differs across thread counts".to_string());
        }
        if !matches_oracle {
            failures.push("resolution core differs from the discrete-event oracle".to_string());
        }
        if oracle.escapes > 0 {
            failures.push(format!("{} ABFT escape(s) in the oracle fleet", oracle.escapes));
        }
        if oracle.pending_at_end != 0 {
            failures.push(format!("{} job(s) stuck in the oracle queue", oracle.pending_at_end));
        }
        if oracle.non_completed != 0 {
            failures
                .push(format!("{} oracle job(s) did not complete cleanly", oracle.non_completed));
        }
        for (t, r, _) in &runs {
            let c = &r.counters;
            let mut need = |cond: bool, what: &str| {
                if !cond {
                    failures.push(format!("threads={t}: {what}"));
                }
            };
            need(r.records.len() as u64 == opts.jobs, "not every job resolved");
            need(c.injected_panics >= 1, "no panic was injected");
            need(c.panics_caught >= 1, "no panic was caught (catch_unwind hole)");
            need(c.injected_hangs >= 1, "no hang was injected");
            need(c.hangs_detected >= 1, "no hang was detected by the heartbeat supervisor");
            need(c.injected_slowdowns >= 1, "no slowdown was injected");
            need(c.slowness_detections >= 1, "no terminal slowdown was recycled");
            need(c.injected_lost_acks >= 1, "the lost-ack race was never injected");
            need(c.duplicates_suppressed >= 1, "the lost-ack duplicate was never suppressed");
            need(c.duplicate_completions == 0, "double-completion: at-most-once broken");
            need(
                c.degraded_completions == 0,
                "a degraded-width completion perturbed the resolution core",
            );
            need(c.worker_retirements == 0, "a worker was retired (restart budget too small)");
            need(c.wedged_threads == 0, "a worker thread wedged past the join budget");
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("STRICT: {f}");
            }
            std::process::exit(1);
        }
        println!("strict: all acceptance checks passed");
    }
}
