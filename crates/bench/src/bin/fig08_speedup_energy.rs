//! Fig. 8 — Speedup (a) and energy benefit (b) for A×A, relative to the
//! single-threaded CPU baseline.
//!
//! Columns match the paper: CPU-1T, CPU-1T-BW, CPU-12T, CPU-12T-BW, GPU,
//! GPU-BW, OuterSPACE, MatRaptor (`-BW` = bandwidth-normalised to
//! 128 GB/s). The paper's geomean speedups of MatRaptor over each:
//! 129.2×, 77.5×, 12.9×, 7.9×, 8.8×, 37.6×, 1.8×; energy benefits:
//! 482.5×, 289.6×, 581.5×, 348.9×, 574.8×, 2458.9×, 12.2×.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fig08_speedup_energy -- [--scale N] [--seed N] [--json]`

use matraptor_baselines::{BandwidthNorm, CpuModel, GpuModel, OuterSpaceModel, Workload};
use matraptor_bench::{geomean, load_suite, print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};
use matraptor_energy::EnergyModel;

fn main() {
    let opts = Options::from_args();
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let accel = Accelerator::new(cfg);
    let mat_energy = EnergyModel::matraptor();

    let cpu1 = CpuModel::single_thread();
    let cpu12 = CpuModel::multi_thread();
    let gpu = GpuModel::default();
    let ospace = OuterSpaceModel::default();

    println!("Fig. 8 — A x A speedup and energy benefit vs CPU-1T (scale 1/{})\n", opts.scale);

    let headers = [
        "matrix",
        "CPU-1T",
        "CPU-1T-BW",
        "CPU-12T",
        "CPU-12T-BW",
        "GPU",
        "GPU-BW",
        "OuterSPACE",
        "MatRaptor",
    ];
    let mut speed_rows = Vec::new();
    let mut energy_rows = Vec::new();
    // Geomean accumulators for MatRaptor vs each baseline.
    let mut sp: Vec<Vec<f64>> = vec![Vec::new(); 7];
    let mut en: Vec<Vec<f64>> = vec![Vec::new(); 7];

    for m in load_suite(&opts) {
        let w = Workload::measure(&m.matrix, &m.matrix);
        let outcome = accel.run(&m.matrix, &m.matrix);
        let mat_time = outcome.stats.elapsed_seconds();
        let mat_traffic = outcome.stats.traffic_read + outcome.stats.traffic_written;
        let mat_e = mat_energy.energy_j(mat_time, mat_traffic);

        let runs = [
            cpu1.run(&w, BandwidthNorm::Native),
            cpu1.run(&w, BandwidthNorm::Normalized),
            cpu12.run(&w, BandwidthNorm::Native),
            cpu12.run(&w, BandwidthNorm::Normalized),
            gpu.run(&w, BandwidthNorm::Native),
            gpu.run(&w, BandwidthNorm::Normalized),
            ospace.run(&w),
        ];
        let base_t = runs[0].time_s;
        let base_e = runs[0].energy_j;

        let mut srow = vec![m.spec.id.to_string()];
        let mut erow = vec![m.spec.id.to_string()];
        for (i, r) in runs.iter().enumerate() {
            srow.push(format!("{:.2}", base_t / r.time_s));
            erow.push(format!("{:.1}", base_e / r.energy_j));
            sp[i].push(r.time_s / mat_time);
            en[i].push(r.energy_j / mat_e);
        }
        srow.push(format!("{:.1}", base_t / mat_time));
        erow.push(format!("{:.1}", base_e / mat_e));
        speed_rows.push(srow);
        energy_rows.push(erow);
    }

    println!("(a) Speedup over CPU-1T");
    print_table(&headers, &speed_rows);
    println!("\n(b) Energy benefit over CPU-1T");
    print_table(&headers, &energy_rows);

    let paper_speed = [129.2, 77.5, 12.9, 7.9, 8.8, 37.6, 1.8];
    let paper_energy = [482.5, 289.6, 581.5, 348.9, 574.8, 2458.9, 12.2];
    let names = ["CPU-1T", "CPU-1T-BW", "CPU-12T", "CPU-12T-BW", "GPU", "GPU-BW", "OuterSPACE"];
    println!("\nMatRaptor geomean speedup over each baseline (paper in parentheses):");
    for i in 0..7 {
        println!(
            "  vs {:<11} {:>8.1}x  ({:>6.1}x)   energy {:>8.1}x  ({:>6.1}x)",
            names[i],
            geomean(&sp[i]),
            paper_speed[i],
            geomean(&en[i]),
            paper_energy[i]
        );
    }
    // The paper's 12.2x OuterSPACE energy figure is consistent with
    // compute-only energy (7.2x power x 1.8x speedup); with DRAM interface
    // energy included (as above) the gap compresses. Report both.
    let compute_only = geomean(&sp[6]) * OuterSpaceModel::default().power_w
        / matraptor_energy::MatRaptorFloorplan::default().power_w();
    println!(
        "  vs OuterSPACE (compute-only energy, the paper's accounting): {compute_only:.1}x  (  12.2x)"
    );
}
