//! Fault-injection campaign: survival and detection rates per fault kind.
//!
//! Sweeps every [`FaultKind`] across a range of seeds, runs each plan
//! through [`Accelerator::try_run_with_faults`], and classifies the
//! outcome: *survived* (the machine tolerated the fault and the verified
//! output is correct), *detected* (the run terminated with a structured
//! `SimError`), or *escaped* (the fault produced neither — a silent
//! wrong answer or an untripped hazard). Escapes are harness bugs; with
//! `--strict` any escape exits nonzero, which is how CI pins the fault
//! model.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fault_campaign --
//! [--scale N] [--seed N] [--seeds N] [--json] [--strict]`

use matraptor_bench::print_table;
use matraptor_core::{classify, Accelerator, FaultKind, FaultPlan, MatRaptorConfig, Verdict};
use matraptor_sparse::gen;

struct CampaignOptions {
    /// Divisor applied to the base matrix dimension (matches the other
    /// binaries' `--scale` semantics: bigger divisor, smaller run).
    scale: usize,
    /// Base generator seed for the matrices.
    seed: u64,
    /// Fault seeds swept per kind.
    seeds: u64,
    json: bool,
    strict: bool,
}

fn parse_args() -> CampaignOptions {
    let mut opts = CampaignOptions { scale: 64, seed: 7, seeds: 8, json: false, strict: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{what} needs a non-negative integer"))
        };
        match arg.as_str() {
            "--scale" => opts.scale = take("--scale").max(1) as usize,
            "--seed" => opts.seed = take("--seed"),
            "--seeds" => opts.seeds = take("--seeds").max(1),
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            other => panic!(
                "unknown argument {other}; supported: --scale N --seed N --seeds N --json --strict"
            ),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let n = (4096 / opts.scale).max(32);
    let nnz = n * 8;
    let a = gen::uniform(n, n, nnz, opts.seed);
    let b = gen::uniform(n, n, nnz, opts.seed.wrapping_add(1));

    // Small machine, short watchdog window: deadlock faults are declared
    // in thousands rather than hundreds of thousands of cycles, and the
    // shallow queues keep the overflow path reachable. Verification stays
    // on — it is the detection path for silent data corruption.
    let mut cfg = MatRaptorConfig::small_test();
    cfg.watchdog_window = 5_000;
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);

    println!(
        "Fault campaign — {} kinds x {} seeds on uniform {n}x{n} ({nnz} nnz per operand)\n",
        FaultKind::ALL.len(),
        opts.seeds
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut escapes = 0u64;
    for kind in FaultKind::ALL {
        let mut survived = 0u64;
        let mut detected = 0u64;
        let mut escaped = 0u64;
        for seed in 0..opts.seeds {
            let plan = FaultPlan::sample(kind, opts.seed ^ seed, lanes);
            let result = accel.try_run_with_faults(&a, &b, Some(&plan));
            match classify(kind, &result) {
                Verdict::Survived => survived += 1,
                Verdict::Detected => detected += 1,
                Verdict::Escaped => escaped += 1,
            }
        }
        escapes += escaped;
        let total = opts.seeds as f64;
        rows.push(vec![
            kind.name().to_string(),
            format!("{survived}"),
            format!("{detected}"),
            format!("{escaped}"),
            format!("{:.0}%", (survived + detected) as f64 / total * 100.0),
        ]);
        json_rows.push(format!(
            "{{\"kind\":\"{}\",\"seeds\":{},\"survived\":{survived},\"detected\":{detected},\"escaped\":{escaped}}}",
            kind.name(),
            opts.seeds
        ));
    }
    print_table(&["fault kind", "survived", "detected", "escaped", "covered"], &rows);
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
    println!("\nsurvived = fault tolerated, output verified correct;");
    println!("detected = structured SimError (deadlock, overflow, corruption, ...);");
    println!("escaped  = neither - a hole in the fault model.");
    if opts.strict && escapes > 0 {
        eprintln!("STRICT: {escapes} undetected escape(s)");
        std::process::exit(1);
    }
}
