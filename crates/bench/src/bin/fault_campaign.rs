//! Fault-injection campaign: survival and detection rates per fault kind.
//!
//! Sweeps every [`FaultKind`] across a range of seeds, runs each plan
//! through [`Accelerator::try_run_with_faults`], and classifies the
//! outcome: *survived* (the machine tolerated the fault and the verified
//! output is correct), *detected* (the run terminated with a structured
//! `SimError`), or *escaped* (the fault produced neither — a silent
//! wrong answer or an untripped hazard). Escapes are harness bugs; with
//! `--strict` any escape exits nonzero, which is how CI pins the fault
//! model.
//!
//! Output verification uses the ABFT row-checksum + Freivalds path
//! (`abft_verification`), not the full Gustavson reference — `O(nnz)`
//! per run instead of a second SpGEMM, which is what makes sweeping
//! hundreds of seeds cheap. `--no-abft` turns it off to measure how many
//! faults *would* escape without it.
//!
//! `--resume-check` additionally replays one faulted seed from a mid-run
//! checkpoint and verifies bit-identical cycle counts and output values —
//! the replay-determinism invariant of DESIGN.md §9, pinned in CI.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fault_campaign --
//! [--scale N] [--seed N] [--seeds N] [--json] [--strict] [--no-abft]
//! [--resume-check]`

use matraptor_bench::print_table;
use matraptor_core::{
    classify, Accelerator, Checkpoint, FaultKind, FaultPlan, MatRaptorConfig, Verdict,
};
use matraptor_sparse::{gen, Csr};

struct CampaignOptions {
    /// Divisor applied to the base matrix dimension (matches the other
    /// binaries' `--scale` semantics: bigger divisor, smaller run).
    scale: usize,
    /// Base generator seed for the matrices.
    seed: u64,
    /// Fault seeds swept per kind.
    seeds: u64,
    json: bool,
    strict: bool,
    /// Disable ABFT output verification (to measure the escape rate the
    /// checks exist to eliminate).
    no_abft: bool,
    /// Replay one faulted seed from a mid-run checkpoint and require
    /// bit-identical results.
    resume_check: bool,
}

fn parse_args() -> CampaignOptions {
    let mut opts = CampaignOptions {
        scale: 64,
        seed: 7,
        seeds: 8,
        json: false,
        strict: false,
        no_abft: false,
        resume_check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{what} needs a non-negative integer"))
        };
        match arg.as_str() {
            "--scale" => opts.scale = take("--scale").max(1) as usize,
            "--seed" => opts.seed = take("--seed"),
            "--seeds" => opts.seeds = take("--seeds").max(1),
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--no-abft" => opts.no_abft = true,
            "--resume-check" => opts.resume_check = true,
            other => panic!(
                "unknown argument {other}; supported: --scale N --seed N --seeds N --json --strict --no-abft --resume-check"
            ),
        }
    }
    opts
}

/// Replays one survivable faulted run (a bounded burst refusal) from a
/// checkpoint taken halfway, round-tripping the checkpoint through its
/// byte serialization, and requires bit-identical cycles and output.
/// Returns true on success.
fn resume_check(accel: &Accelerator, a: &Csr<f64>, b: &Csr<f64>, lanes: usize) -> bool {
    let plan = FaultPlan::sample(FaultKind::BurstRefusal, 1, lanes);
    let full = match accel.try_run_with_faults(a, b, Some(&plan)) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("resume-check: baseline faulted run failed: {e}");
            return false;
        }
    };
    let half = full.stats.total_cycles / 2;
    let ck = match accel.try_run_to_checkpoint(a, b, Some(&plan), half) {
        Ok(Some(ck)) => ck,
        Ok(None) => {
            eprintln!("resume-check: run completed before cycle {half}");
            return false;
        }
        Err(e) => {
            eprintln!("resume-check: checkpointing run failed: {e}");
            return false;
        }
    };
    // Round-trip through the serialized form — the persistence path a
    // real host driver would use.
    let bytes = ck.to_bytes();
    let ck = match Checkpoint::from_bytes(&bytes) {
        Ok(ck) => ck,
        Err(e) => {
            eprintln!("resume-check: serialized checkpoint rejected: {e}");
            return false;
        }
    };
    let resumed = match accel.try_run_from(a, b, &ck) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("resume-check: resumed run failed: {e}");
            return false;
        }
    };
    if resumed.stats.total_cycles != full.stats.total_cycles {
        eprintln!(
            "resume-check: cycle mismatch — full {} vs resumed {}",
            full.stats.total_cycles, resumed.stats.total_cycles
        );
        return false;
    }
    let full_bits: Vec<u64> = full.c.values().iter().map(|v| v.to_bits()).collect();
    let resumed_bits: Vec<u64> = resumed.c.values().iter().map(|v| v.to_bits()).collect();
    if full.c.row_ptr() != resumed.c.row_ptr()
        || full.c.col_idx() != resumed.c.col_idx()
        || full_bits != resumed_bits
    {
        eprintln!("resume-check: output differs between full and resumed run");
        return false;
    }
    println!(
        "resume-check: checkpoint at cycle {half} ({} bytes) resumed bit-identically ({} total cycles)",
        bytes.len(),
        full.stats.total_cycles
    );
    true
}

fn main() {
    let opts = parse_args();
    let n = (4096 / opts.scale).max(32);
    let nnz = n * 8;
    let a = gen::uniform(n, n, nnz, opts.seed);
    let b = gen::uniform(n, n, nnz, opts.seed.wrapping_add(1));

    // Small machine, short watchdog window: deadlock faults are declared
    // in thousands rather than hundreds of thousands of cycles, and the
    // shallow queues keep the overflow path reachable. Silent-corruption
    // detection rides on ABFT (O(nnz) per run) instead of the full
    // Gustavson reference, so the sweep stays cheap at any scale.
    let mut cfg = MatRaptorConfig::small_test();
    cfg.watchdog_window = 5_000;
    cfg.verify_against_reference = false;
    cfg.abft_verification = !opts.no_abft;
    let lanes = cfg.num_lanes;
    let accel = Accelerator::new(cfg);

    println!(
        "Fault campaign — {} kinds x {} seeds on uniform {n}x{n} ({nnz} nnz per operand), abft {}\n",
        FaultKind::ALL.len(),
        opts.seeds,
        if opts.no_abft { "off" } else { "on" }
    );

    let mut rows = Vec::new();
    let mut kind_objects = Vec::new();
    let (mut total_survived, mut total_detected, mut total_escaped) = (0u64, 0u64, 0u64);
    for kind in FaultKind::ALL {
        let mut survived = 0u64;
        let mut detected = 0u64;
        let mut escaped = 0u64;
        for seed in 0..opts.seeds {
            let plan = FaultPlan::sample(kind, opts.seed ^ seed, lanes);
            let result = accel.try_run_with_faults(&a, &b, Some(&plan));
            match classify(kind, &result) {
                Verdict::Survived => survived += 1,
                Verdict::Detected => detected += 1,
                Verdict::Escaped => escaped += 1,
            }
        }
        total_survived += survived;
        total_detected += detected;
        total_escaped += escaped;
        let total = opts.seeds as f64;
        rows.push(vec![
            kind.name().to_string(),
            format!("{survived}"),
            format!("{detected}"),
            format!("{escaped}"),
            format!("{:.0}%", (survived + detected) as f64 / total * 100.0),
        ]);
        kind_objects.push(format!(
            "{{\"kind\":\"{}\",\"seeds\":{},\"survived\":{survived},\"detected\":{detected},\"escaped\":{escaped}}}",
            kind.name(),
            opts.seeds
        ));
    }
    print_table(&["fault kind", "survived", "detected", "escaped", "covered"], &rows);

    let resume_ok = if opts.resume_check {
        println!();
        Some(resume_check(&accel, &a, &b, lanes))
    } else {
        None
    };

    if opts.json {
        // One top-level object: campaign parameters, aggregate totals,
        // then the per-kind array — a single parseable artifact for CI.
        let runs = opts.seeds * FaultKind::ALL.len() as u64;
        let resume_field = match resume_ok {
            Some(ok) => format!(",\"resume_check\":{ok}"),
            None => String::new(),
        };
        println!(
            "\n{{\"matrix\":{{\"n\":{n},\"nnz\":{nnz}}},\"seeds_per_kind\":{},\"abft\":{},\"runs\":{runs},\"survived\":{total_survived},\"detected\":{total_detected},\"escaped\":{total_escaped}{resume_field},\"kinds\":[\n {}\n]}}",
            opts.seeds,
            !opts.no_abft,
            kind_objects.join(",\n ")
        );
    }
    println!("\nsurvived = fault tolerated, output verified correct;");
    println!("detected = structured SimError (deadlock, overflow, corruption, ...);");
    println!("escaped  = neither - a hole in the fault model.");
    let mut failed = false;
    if opts.strict && total_escaped > 0 {
        eprintln!("STRICT: {total_escaped} undetected escape(s)");
        failed = true;
    }
    if resume_ok == Some(false) {
        eprintln!("RESUME-CHECK: replay from checkpoint was not bit-identical");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
