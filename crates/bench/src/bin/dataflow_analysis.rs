//! Section II — dataflow comparison: data reuse and on-chip memory.
//!
//! Evaluates the analytic model of Section II (inner / outer / row-wise /
//! column-wise product) on the real generated matrices and pairs it with
//! *measured* operation counts from actually running each dataflow's
//! reference kernel. This regenerates the argument behind Fig. 1 and the
//! claims of Sections II-A through II-D:
//!
//! * inner product wastes index comparisons and has vanishing reuse;
//! * outer product has the best reuse but needs megabytes of on-chip
//!   buffer for partial sums;
//! * row-wise product keeps kilobyte-scale buffers at modest reuse cost.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin dataflow_analysis -- [--scale N] [--seed N] [--json]`

use matraptor_bench::{load_suite, print_table, Options};
use matraptor_sparse::dataflow;

fn main() {
    let mut opts = Options::from_args();
    // The inner-product kernel is O(rows * cols) dot products; keep the
    // default size modest.
    if opts.scale < 64 {
        opts.scale = 64;
    }
    println!(
        "Section II — dataflow analysis on A x A (scale 1/{}; entry = 12 B as in Section II)\n",
        opts.scale
    );

    let entry_bytes = 12; // value + column id, the paper's partial-sum entry
    let mut json_rows = Vec::new();
    for m in load_suite(&opts).into_iter().take(6) {
        let costs = dataflow::compare(&m.matrix, &m.matrix);
        println!(
            "{} ({}x{}, {} nnz):",
            m.spec.id,
            m.matrix.rows(),
            m.matrix.cols(),
            m.matrix.nnz()
        );
        let rows: Vec<Vec<String>> = costs
            .iter()
            .map(|c| {
                vec![
                    c.dataflow.name().to_string(),
                    format!("{:.4}", c.model_reuse),
                    format!("{:.1}", c.model_on_chip_entries * entry_bytes as f64 / 1024.0),
                    format!("{}", c.measured.multiplies),
                    format!("{}", c.measured.index_comparisons),
                    format!("{}", c.measured.partial_sum_entries),
                ]
            })
            .collect();
        print_table(
            &[
                "dataflow",
                "model reuse",
                "model on-chip (KB)",
                "multiplies",
                "idx compares",
                "partials",
            ],
            &rows,
        );
        let row = &costs[2];
        let outer = &costs[1];
        json_rows.push(format!(
            "{{\"id\":\"{}\",\"row_on_chip_kb\":{},\"outer_on_chip_kb\":{}}}",
            m.spec.id,
            row.model_on_chip_entries * entry_bytes as f64 / 1024.0,
            outer.model_on_chip_entries * entry_bytes as f64 / 1024.0
        ));
        println!();
    }
    println!("At the paper's full dimensions the outer product needs 10-100s of MB of");
    println!("on-chip buffer while row-wise product needs a few KB (Sections II-B/II-C).");
    if opts.json {
        println!("[{}]", json_rows.join(",\n "));
    }
}
