//! Overload/stress campaign for the multi-job service layer.
//!
//! Drives [`matraptor_service::Service`] with a seeded stream of ≥1000
//! mixed-size SpGEMM jobs across four weighted tenants, with scripted
//! adversity layered on top:
//!
//! * sporadic fault-plan jobs (ABFT-detectable corruption, dropped writes,
//!   survivable burst refusals) sprinkled through the stream;
//! * a **poison pair** submitted repeatedly — it must fail, strike, and
//!   land in quarantine, with later submissions refused at admission;
//! * a mid-campaign **deadlock burst** (channel-stall plans back to back)
//!   that trips the circuit breaker: subsequent jobs shed to the CPU
//!   fallback, the cooldown lapses in simulated time, a half-open probe
//!   closes the breaker again — one full breaker cycle;
//! * a late **admission burst** against the smallest tenant's bounded
//!   queue, demonstrating explicit `QueueFull` backpressure;
//! * a tight free-tier deadline policy, so some oversized free-tier jobs
//!   are cancelled mid-flight at their cycle deadline.
//!
//! The output is a single JSON SLO report: throughput, p50/p99 queue-wait
//! and service-cycle percentiles, rejection/shed/quarantine counts, the
//! breaker transition log, and the ABFT escape count (which must be 0).
//! `--strict` re-runs the whole campaign and fails unless the two reports
//! are byte-identical (replay determinism), plus checks the acceptance
//! invariants: zero escapes, queue drained, breaker closed after a full
//! cycle, at least one quarantined input, and the job-count floor.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin stress_campaign --
//! [--seed N|0xN] [--jobs N] [--json] [--strict]`

use std::rc::Rc;

use matraptor_bench::harness::percentile;
use matraptor_core::{FaultKind, FaultPlan, MatRaptorConfig};
use matraptor_service::{
    BreakerConfig, BreakerState, Disposition, JobSpec, Rejected, Service, ServiceConfig,
    TenantConfig, TenantId,
};
use matraptor_sim::trace::fnv1a64;
use matraptor_sparse::{gen, rng::ChaCha8Rng, Csr};

/// A shared (A, B) operand pair, as held by the job pool and the scripted
/// poison/burst inputs.
type MatPair = (Rc<Csr<f64>>, Rc<Csr<f64>>);

struct Options {
    seed: u64,
    jobs: u64,
    json: bool,
    strict: bool,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Options {
    let mut opts = Options { seed: 0xA4, jobs: 1000, json: false, strict: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .and_then(|v| parse_u64(&v))
                .unwrap_or_else(|| panic!("{what} needs an integer (decimal or 0x-hex)"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = take("--seed"),
            "--jobs" => opts.jobs = take("--jobs").max(1),
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            other => {
                panic!("unknown argument {other}; supported: --seed N --jobs N --json --strict")
            }
        }
    }
    opts
}

/// The number of in-flight jobs the submitter tries to keep queued — deep
/// enough that queue-wait percentiles are meaningful, shallow enough that
/// ordinary traffic never trips the bounded-queue rejection (the scripted
/// admission burst does that deliberately).
const TARGET_BACKLOG: usize = 4;

/// Scripted campaign moments, as indices into the main job stream.
const POISON_AT: [u64; 5] = [150, 350, 550, 750, 950];
const BREAKER_BURST_AT: u64 = 500;
const ADMISSION_BURST_AT: u64 = 900;

fn service_config() -> ServiceConfig {
    let mut accel = MatRaptorConfig::small_test();
    // Short watchdog window: injected deadlocks are declared in thousands
    // of cycles, keeping faulty jobs cheap relative to clean ones.
    accel.watchdog_window = 2_000;
    accel.verify_against_reference = false;
    accel.abft_verification = true;
    ServiceConfig {
        accel,
        tenants: vec![
            TenantConfig {
                name: "batch".to_string(),
                weight: 4,
                queue_capacity: 32,
                deadline: deadline_loose(),
            },
            TenantConfig {
                name: "interactive".to_string(),
                weight: 2,
                queue_capacity: 16,
                deadline: deadline_loose(),
            },
            TenantConfig {
                name: "analytics".to_string(),
                weight: 1,
                queue_capacity: 16,
                deadline: deadline_loose(),
            },
            // The free tier gets a tight flat budget (no per-flop slack):
            // small jobs fit, oversized ones are cancelled at the deadline
            // instead of hogging the array.
            TenantConfig {
                name: "free".to_string(),
                weight: 1,
                queue_capacity: 8,
                deadline: matraptor_service::DeadlinePolicy {
                    base_cycles: 12_000,
                    cycles_per_flop: 0,
                },
            },
        ],
        quantum_cycles: 200_000,
        breaker: BreakerConfig {
            failure_threshold: 4,
            cooldown_cycles: 600_000,
            max_backoff_doublings: 4,
        },
        quarantine_threshold: 2,
        max_attempts: 2,
        cpu_cycles_per_flop: 64,
    }
}

fn deadline_loose() -> matraptor_service::DeadlinePolicy {
    matraptor_service::DeadlinePolicy { base_cycles: 2_000_000, cycles_per_flop: 400 }
}

/// Square matrices only, grouped by dimension class so any two picks from
/// one class multiply.
struct Pool {
    classes: Vec<Vec<Rc<Csr<f64>>>>,
}

impl Pool {
    fn build(seed: u64) -> Pool {
        let dims = [32usize, 48, 64];
        let per_class = 4;
        let classes = dims
            .iter()
            .enumerate()
            .map(|(c, &n)| {
                (0..per_class)
                    .map(|i| {
                        let s = seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((c * per_class + i) as u64);
                        Rc::new(gen::uniform(n, n, n * 6, s))
                    })
                    .collect()
            })
            .collect();
        Pool { classes }
    }

    fn pick(&self, rng: &mut ChaCha8Rng) -> (Rc<Csr<f64>>, Rc<Csr<f64>>) {
        let class = &self.classes[rng.gen_range(0..self.classes.len())];
        let a = Rc::clone(&class[rng.gen_range(0..class.len())]);
        let b = Rc::clone(&class[rng.gen_range(0..class.len())]);
        (a, b)
    }
}

/// Weighted tenant pick: 40% batch, 25% interactive, 20% analytics, 15%
/// free tier.
fn pick_tenant(rng: &mut ChaCha8Rng) -> TenantId {
    let roll = rng.gen_range(0..100u32);
    TenantId(match roll {
        0..=39 => 0,
        40..=64 => 1,
        65..=84 => 2,
        _ => 3,
    })
}

/// Sporadic fault kinds for the background stream. Deliberately excludes
/// `ChannelStall` (reserved for the scripted breaker burst, so breaker
/// opens happen where the script expects them) and the truncation/overflow
/// kinds whose failures would add noise to the quarantine story.
const SPORADIC_KINDS: [FaultKind; 3] =
    [FaultKind::StreamCorruption, FaultKind::DroppedWrite, FaultKind::BurstRefusal];

#[derive(Default)]
struct TenantTally {
    resolved: u64,
    completed: u64,
    on_cpu: u64,
    deadline_exceeded: u64,
    failed: u64,
    queue_waits: Vec<u64>,
}

struct CampaignResult {
    json: String,
    resolved: u64,
    escapes: u64,
    pending_at_end: usize,
    quarantined_inputs: usize,
    breaker_closed: bool,
    full_breaker_cycle: bool,
    rejected_queue_full: u64,
    deadline_exceeded: u64,
}

fn run_campaign(opts: &Options) -> CampaignResult {
    let cfg = service_config();
    let lanes = cfg.accel.num_lanes;
    let mut service = Service::new(cfg).expect("stress config is valid");
    let pool = Pool::build(opts.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);

    // Dedicated pairs outside the pool, so their quarantine strikes are
    // isolated from the background stream.
    let poison: MatPair = (
        Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_000))),
        Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_001))),
    );
    let poison_plan = FaultPlan::sample(FaultKind::ChannelStall, opts.seed ^ 0x50, lanes);
    let burst_pairs: Vec<MatPair> = (0..3)
        .map(|i| {
            (
                Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_100 + 2 * i))),
                Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_101 + 2 * i))),
            )
        })
        .collect();

    for j in 0..opts.jobs {
        // Scripted moments ride alongside the numbered stream.
        if POISON_AT.contains(&j) {
            let spec = JobSpec {
                tenant: TenantId(1),
                a: Rc::clone(&poison.0),
                b: Rc::clone(&poison.1),
                plan: Some(poison_plan),
            };
            match service.submit(spec) {
                Ok(_) | Err(Rejected::Quarantined { .. }) => {}
                Err(e) => panic!("poison submission unexpectedly rejected: {e}"),
            }
        }
        if j == BREAKER_BURST_AT {
            for (i, (a, b)) in burst_pairs.iter().enumerate() {
                let plan = FaultPlan::sample(
                    FaultKind::ChannelStall,
                    opts.seed ^ (0x60 + i as u64),
                    lanes,
                );
                let spec = JobSpec {
                    tenant: TenantId(0),
                    a: Rc::clone(a),
                    b: Rc::clone(b),
                    plan: Some(plan),
                };
                service.submit(spec).expect("burst submission");
                // Resolve immediately so the consecutive-failure window is
                // not diluted by queued clean jobs.
                while service.pending() > 0 {
                    service.step();
                }
            }
        }
        if j == ADMISSION_BURST_AT {
            // Slam the free tier's bounded queue (capacity 8) with a burst
            // and let the tail bounce — explicit backpressure, not buffering.
            let mut bounced = 0u64;
            for i in 0..12u64 {
                let class = &pool.classes[0];
                let a = Rc::clone(&class[(i % 4) as usize]);
                let b = Rc::clone(&class[((i + 1) % 4) as usize]);
                match service.submit(JobSpec { tenant: TenantId(3), a, b, plan: None }) {
                    Ok(_) => {}
                    Err(Rejected::QueueFull { .. }) => bounced += 1,
                    Err(Rejected::Quarantined { .. }) => {}
                    Err(e) => panic!("admission burst: unexpected rejection {e}"),
                }
            }
            assert!(bounced > 0, "the admission burst must overflow the free tier queue");
        }

        // One background job per index.
        let tenant = pick_tenant(&mut rng);
        let (a, b) = pool.pick(&mut rng);
        let plan = if j > 0 && j % 53 == 0 {
            let kind = SPORADIC_KINDS[(j / 53) as usize % SPORADIC_KINDS.len()];
            Some(FaultPlan::sample(kind, opts.seed ^ j, lanes))
        } else {
            None
        };
        match service.submit(JobSpec { tenant, a, b, plan }) {
            Ok(_) => {}
            // Quarantine fallout from sporadic faults, or a still-full
            // queue: both are the service doing its job.
            Err(Rejected::Quarantined { .. }) | Err(Rejected::QueueFull { .. }) => {}
            Err(e) => panic!("background job {j} rejected: {e}"),
        }
        while service.pending() > TARGET_BACKLOG {
            service.step();
        }
    }
    while service.step().is_some() {}

    // ---- report ----
    let c = *service.counters();
    let records = service.records();
    let resolved = records.len() as u64;
    let mut queue_waits: Vec<u64> = records.iter().map(|r| r.queue_wait()).collect();
    let mut service_cycles: Vec<u64> = records.iter().map(|r| r.service_cycles()).collect();
    queue_waits.sort_unstable();
    service_cycles.sort_unstable();
    let final_cycle = service.now().0;
    let flops_done: u64 = records
        .iter()
        .filter(|r| matches!(r.disposition, Disposition::Completed | Disposition::CompletedOnCpu))
        .map(|r| r.estimated_flops)
        .sum();
    let jobs_per_gcycle = if final_cycle == 0 {
        0
    } else {
        (resolved as u128 * 1_000_000_000 / final_cycle as u128) as u64
    };
    let flops_per_kcycle = if final_cycle == 0 {
        0
    } else {
        (flops_done as u128 * 1_000 / final_cycle as u128) as u64
    };

    let mut tallies: Vec<TenantTally> = (0..4).map(|_| TenantTally::default()).collect();
    for r in records {
        let t = &mut tallies[r.tenant.0];
        t.resolved += 1;
        t.queue_waits.push(r.queue_wait());
        match r.disposition {
            Disposition::Completed => t.completed += 1,
            Disposition::CompletedOnCpu => t.on_cpu += 1,
            Disposition::DeadlineExceeded => t.deadline_exceeded += 1,
            Disposition::Failed => t.failed += 1,
            // The stress campaign never cancels or drains; these arms are
            // unreachable here but keep the match total.
            Disposition::Cancelled | Disposition::CheckpointedAtDrain => {}
        }
    }
    let tenant_names = ["batch", "interactive", "analytics", "free"];
    let tenant_objects: Vec<String> = tallies
        .iter_mut()
        .zip(tenant_names)
        .map(|(t, name)| {
            t.queue_waits.sort_unstable();
            format!(
                "{{\"name\":\"{name}\",\"resolved\":{},\"completed\":{},\"on_cpu\":{},\"deadline_exceeded\":{},\"failed\":{},\"queue_wait_p50\":{}}}",
                t.resolved,
                t.completed,
                t.on_cpu,
                t.deadline_exceeded,
                t.failed,
                percentile(&t.queue_waits, 50)
            )
        })
        .collect();

    let transitions = service.breaker_transitions();
    let transition_objects: Vec<String> = transitions
        .iter()
        .map(|t| {
            format!(
                "{{\"at\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                t.at.0,
                t.from.label(),
                t.to.label()
            )
        })
        .collect();
    let has_edge = |from: BreakerState, to: BreakerState| {
        transitions.iter().any(|t| t.from == from && t.to == to)
    };
    let full_breaker_cycle = has_edge(BreakerState::Closed, BreakerState::Open)
        && has_edge(BreakerState::Open, BreakerState::HalfOpen)
        && has_edge(BreakerState::HalfOpen, BreakerState::Closed);
    let breaker_final = service.breaker_state();
    let pending_at_end = service.pending();
    let quarantined_inputs = service.quarantined_inputs();

    let body = format!(
        "{{\"campaign\":{{\"seed\":{},\"jobs_target\":{},\"tenants\":4}},\
\"totals\":{{\"submitted\":{},\"accepted\":{},\"resolved\":{resolved},\"completed_accel\":{},\"completed_cpu\":{},\"deadline_exceeded\":{},\"failed\":{},\"retries\":{},\"escapes\":{},\"rejected_queue_full\":{},\"rejected_quarantined\":{},\"rejected_invalid\":{},\"quarantined_inputs\":{quarantined_inputs},\"pending_at_end\":{pending_at_end}}},\
\"slo\":{{\"final_cycle\":{final_cycle},\"jobs_per_gcycle\":{jobs_per_gcycle},\"flops_per_kcycle\":{flops_per_kcycle},\"queue_wait\":{{\"p50\":{},\"p99\":{}}},\"service_cycles\":{{\"p50\":{},\"p99\":{}}}}},\
\"tenants\":[{}],\
\"breaker\":{{\"final\":\"{}\",\"full_cycle\":{full_breaker_cycle},\"transitions\":[{}]}},\
\"metrics_fingerprint\":\"{:#018x}\"",
        opts.seed,
        opts.jobs,
        c.submitted,
        c.accepted,
        c.completed_accel,
        c.completed_cpu,
        c.deadline_exceeded,
        c.failed,
        c.retries,
        c.escapes,
        c.rejected_queue_full,
        c.rejected_quarantined,
        c.rejected_invalid,
        percentile(&queue_waits, 50),
        percentile(&queue_waits, 99),
        percentile(&service_cycles, 50),
        percentile(&service_cycles, 99),
        tenant_objects.join(","),
        breaker_final.label(),
        transition_objects.join(","),
        service.metrics().fingerprint(),
    );
    let json = format!("{body},\"report_fnv1a\":\"{:#018x}\"}}", fnv1a64(body.as_bytes()));

    CampaignResult {
        json,
        resolved,
        escapes: c.escapes,
        pending_at_end,
        quarantined_inputs,
        breaker_closed: breaker_final == BreakerState::Closed,
        full_breaker_cycle,
        rejected_queue_full: c.rejected_queue_full,
        deadline_exceeded: c.deadline_exceeded,
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "Stress campaign — seed {:#x}, {} background jobs across 4 tenants\n",
        opts.seed, opts.jobs
    );
    let result = run_campaign(&opts);

    println!("resolved jobs        {}", result.resolved);
    println!("abft escapes         {}", result.escapes);
    println!("deadline kills       {}", result.deadline_exceeded);
    println!("queue-full bounces   {}", result.rejected_queue_full);
    println!("quarantined inputs   {}", result.quarantined_inputs);
    println!(
        "breaker              {} (full open/half-open/closed cycle: {})",
        if result.breaker_closed { "closed" } else { "NOT CLOSED" },
        result.full_breaker_cycle
    );
    println!("pending at end       {}", result.pending_at_end);

    if opts.json {
        println!("\n{}", result.json);
    }

    if opts.strict {
        let mut failures: Vec<String> = Vec::new();
        if result.escapes > 0 {
            failures.push(format!("{} ABFT escape(s)", result.escapes));
        }
        if result.resolved < opts.jobs {
            failures.push(format!("only {} of {} jobs resolved", result.resolved, opts.jobs));
        }
        if result.pending_at_end != 0 {
            failures.push(format!("{} job(s) stuck in queue", result.pending_at_end));
        }
        if !result.breaker_closed {
            failures.push("breaker stuck open at campaign end".to_string());
        }
        if !result.full_breaker_cycle {
            failures.push("no full breaker cycle observed".to_string());
        }
        if result.quarantined_inputs == 0 {
            failures.push("no input was quarantined".to_string());
        }
        if result.rejected_queue_full == 0 {
            failures.push("no QueueFull backpressure observed".to_string());
        }
        if result.deadline_exceeded == 0 {
            failures.push("no deadline cancellation observed".to_string());
        }
        // Replay determinism: the whole campaign, byte for byte.
        let replay = run_campaign(&opts);
        if replay.json != result.json {
            failures.push("report is not byte-identical across two runs".to_string());
        } else {
            println!("\nstrict: replay report byte-identical ({} bytes)", result.json.len());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("STRICT: {f}");
            }
            std::process::exit(1);
        }
        println!("strict: all acceptance checks passed");
    }
}
