//! Fig. 7 — Performance of SpGEMM under the roofline of MatRaptor (A×A).
//!
//! Prints, for each Table II matrix: operation intensity (OPs/byte),
//! achieved throughput (GOP/s), the roofline bound at that intensity, and
//! the fraction of the bound achieved. The paper's observation to
//! reproduce: *every* benchmark sits in the memory-bound region (left of
//! the ridge) and close to the slanted roof, with the residual gap caused
//! by matrix-B channel conflicts.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fig07_roofline -- [--scale N] [--seed N] [--json]`

use matraptor_bench::{load_suite, print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};

fn main() {
    let opts = Options::from_args();
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let peak_gops = cfg.peak_gops();
    let peak_bw = cfg.mem.peak_bandwidth_gbs();
    let accel = Accelerator::new(cfg);

    println!("Fig. 7 — roofline for A x A (scale 1/{})", opts.scale);
    println!(
        "peak compute {peak_gops} GOP/s, peak bandwidth {peak_bw} GB/s, ridge at {:.2} OPs/byte\n",
        peak_gops / peak_bw
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for m in load_suite(&opts) {
        let outcome = accel.run(&m.matrix, &m.matrix);
        let s = &outcome.stats;
        let oi = s.op_intensity();
        let gops = s.achieved_gops();
        let roof = peak_gops.min(oi * peak_bw);
        rows.push(vec![
            m.spec.id.to_string(),
            format!("{}", m.matrix.rows()),
            format!("{}", m.matrix.nnz()),
            format!("{:.3}", oi),
            format!("{:.2}", gops),
            format!("{:.2}", roof),
            format!("{:.0}%", 100.0 * gops / roof),
            format!("{:.1}", s.achieved_bandwidth_gbs()),
            if oi < peak_gops / peak_bw { "memory".into() } else { "compute".into() },
        ]);
        json_rows.push(format!(
            "{{\"id\":\"{}\",\"op_intensity\":{oi},\"gops\":{gops},\"roof\":{roof},\"bandwidth_gbs\":{}}}",
            m.spec.id,
            s.achieved_bandwidth_gbs()
        ));
    }
    print_table(
        &["matrix", "N", "nnz", "OI (ops/B)", "GOP/s", "roof", "of roof", "GB/s", "region"],
        &rows,
    );
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
}
