//! Scale sweep — how simulated cycles track problem size.
//!
//! Runs one matrix family across `--scale` values and prints cycles,
//! flops, and cycles/flop. SpGEMM work grows as O(flops) (the paper's
//! O(nnz·nnz/N)), so cycles/flop should stay roughly flat as the matrix
//! grows — evidence that the reported speedups are not an artefact of the
//! scaled-down evaluation. Also useful for estimating full-scale
//! (`--scale 1`) simulation times before committing to them.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin sweep_scale -- [--seed N]`

use matraptor_bench::{print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};
use matraptor_sparse::gen::suite;
use matraptor_sparse::spgemm;
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let accel = Accelerator::new(cfg);

    println!("Scale sweep — az (amazon0312 stand-in), A x A\n");
    let spec = suite::by_id("az").expect("az");
    let mut rows = Vec::new();
    for scale in [256usize, 128, 64, 32, 16] {
        let a = spec.generate(scale, opts.seed);
        let flops = spgemm::multiply_count(&a, &a);
        let wall = Instant::now();
        let s = accel.run(&a, &a).stats;
        rows.push(vec![
            format!("1/{scale}"),
            format!("{}", a.rows()),
            format!("{}", a.nnz()),
            format!("{flops}"),
            format!("{}", s.total_cycles),
            format!("{:.2}", s.total_cycles as f64 * cfg_lanes() / flops as f64),
            format!("{:.1}", s.achieved_bandwidth_gbs()),
            format!("{:.1}s", wall.elapsed().as_secs_f64()),
        ]);
    }
    print_table(
        &["scale", "N", "nnz", "flops", "cycles", "lane-cyc/flop", "GB/s", "host wall"],
        &rows,
    );
    println!("\nflat lane-cycles/flop across scales means the scaled-down evaluation");
    println!("predicts full-scale behaviour up to the density distortion noted in DESIGN.md.");
}

fn cfg_lanes() -> f64 {
    MatRaptorConfig::default().num_lanes as f64
}
