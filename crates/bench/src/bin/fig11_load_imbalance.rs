//! Fig. 11 — Load imbalance of the C²SR round-robin row assignment.
//!
//! Measured as the ratio of the maximum to minimum number of A non-zeros
//! assigned to the 8 PEs. The paper finds < 5 % imbalance everywhere
//! except the two small matrices (`wv`, `fb`), where round-robin has too
//! few rows to average over.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fig11_load_imbalance -- [--scale N] [--seed N] [--json]`

use matraptor_bench::{load_suite, print_table, Options};
use matraptor_sparse::C2sr;

fn main() {
    let opts = Options::from_args();
    let lanes = 8;
    println!(
        "Fig. 11 — max/min per-PE nnz(A) under round-robin rows, {lanes} PEs (scale 1/{})\n",
        opts.scale
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for m in load_suite(&opts) {
        let c2sr = C2sr::from_csr(&m.matrix, lanes);
        let per_pe: Vec<u64> = (0..lanes).map(|l| c2sr.channel_nnz(l) as u64).collect();
        let max = *per_pe.iter().max().expect("8 lanes");
        let min = *per_pe.iter().min().expect("8 lanes");
        let ratio = if min == 0 { f64::INFINITY } else { max as f64 / min as f64 };
        rows.push(vec![
            m.spec.id.to_string(),
            format!("{}", m.matrix.rows()),
            format!("{}", m.matrix.nnz()),
            format!("{:.4}", ratio),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
        ]);
        json_rows.push(format!("{{\"id\":\"{}\",\"imbalance\":{ratio}}}", m.spec.id));
    }
    print_table(&["matrix", "N", "nnz", "max/min", "imbalance"], &rows);
    println!("\npaper: < 5% everywhere except the small wv and fb");
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
}
