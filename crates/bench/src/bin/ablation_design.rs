//! Ablation — the three headline design choices of Section IV:
//!
//! 1. **double buffering** (two queue sets overlapping Phase I and II,
//!    Fig. 5b) vs a single set;
//! 2. **vectorized streaming reads** (64 B requests matching the channel
//!    interleave) vs narrow 8 B element reads — the end-to-end version of
//!    the Fig. 6 bandwidth argument;
//! 3. **lane scaling** (2/4/8 lanes with matching channel counts).
//!
//! Usage: `cargo run --release -p matraptor-bench --bin ablation_design -- [--scale N] [--seed N]`

use matraptor_bench::{print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};
use matraptor_mem::HbmConfig;
use matraptor_sparse::gen::suite;

fn main() {
    let opts = Options::from_args();
    let a = suite::by_id("az").expect("az").generate(opts.scale, opts.seed);
    println!("Ablation — Section IV design choices (scale 1/{})\n", opts.scale);

    let base = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };

    // 1. Double buffering — visible on a dense matrix where Phase II is a
    // sizeable fraction of Phase I (the paper measures the ratio down to
    // ~2); memory-bound sparse matrices hide the phases behind DRAM.
    let dense = suite::by_id("fb").expect("fb").generate(opts.scale / 2, opts.seed);
    // An idealised low-latency memory exposes the PE datapath: with real
    // HBM timing the loader pipeline buffers across Phase II, so the
    // double buffer's benefit only appears once memory stops being the
    // bottleneck — which is itself a finding worth printing.
    let ideal_mem = HbmConfig { access_latency: 2, row_miss_penalty: 0, ..HbmConfig::default() };
    let mut rows = Vec::new();
    for (label, db, mem) in [
        ("double-buffered, HBM", true, base.mem.clone()),
        ("single set, HBM", false, base.mem.clone()),
        ("double-buffered, ideal mem", true, ideal_mem.clone()),
        ("single set, ideal mem", false, ideal_mem.clone()),
    ] {
        let cfg = MatRaptorConfig { double_buffering: db, mem, ..base.clone() };
        let s = Accelerator::new(cfg).run(&dense, &dense).stats;
        let (busy, merge, _, _) = s.breakdown.fractions();
        rows.push(vec![
            label.into(),
            format!("{}", s.total_cycles),
            format!("{:.1}%", busy * 100.0),
            format!("{:.1}%", merge * 100.0),
        ]);
    }
    println!("double buffering (two queue sets, Fig. 5b), on fb (N={}):", dense.rows());
    print_table(&["configuration", "cycles", "busy", "merge stall"], &rows);
    println!("  -> under real HBM timing the loaders hide Phase II; the duplicated");
    println!("     queue sets pay off as the memory system gets faster\n");

    // 2. Read request width.
    println!(
        "loader read width (C2SR's vectorized streaming vs narrow reads), on az (N={}):",
        a.rows()
    );
    let mut rows = Vec::new();
    for width in [8u32, 16, 32, 64] {
        let cfg = MatRaptorConfig { read_request_bytes: width, ..base.clone() };
        let s = Accelerator::new(cfg).run(&a, &a).stats;
        rows.push(vec![
            format!("{width} B"),
            format!("{}", s.total_cycles),
            format!("{:.1}", s.achieved_bandwidth_gbs()),
            format!("{:.1}", s.useful_bandwidth_gbs()),
        ]);
    }
    print_table(&["request width", "cycles", "pin GB/s", "useful GB/s"], &rows);

    // 3. Lane scaling.
    println!("\nlane scaling (lanes = channels):");
    let mut rows = Vec::new();
    let mut baseline = None;
    for lanes in [2usize, 4, 8] {
        let cfg = MatRaptorConfig {
            num_lanes: lanes,
            mem: HbmConfig::with_channels(lanes),
            ..base.clone()
        };
        let s = Accelerator::new(cfg).run(&a, &a).stats;
        let speedup = match baseline {
            None => {
                baseline = Some(s.total_cycles);
                1.0
            }
            Some(b) => b as f64 / s.total_cycles as f64,
        };
        rows.push(vec![
            format!("{lanes}"),
            format!("{}", s.total_cycles),
            format!("{speedup:.2}x"),
            format!("{:.2}", s.achieved_gops()),
        ]);
    }
    print_table(&["lanes", "cycles", "speedup vs 2", "GOP/s"], &rows);
}
