//! Table I — Area and power breakdown of MatRaptor.
//!
//! Prints the component table at TSMC 28 nm and the derived comparisons
//! the abstract makes against OuterSPACE (31.3× smaller, 7.2× less
//! power). Component values are the paper's synthesis results (we cannot
//! rerun Synopsys DC / CACTI); the point of this binary is the derived
//! arithmetic: totals, percentage shares, floorplan scaling, and the
//! 32 nm → 28 nm technology conversion for OuterSPACE.
//!
//! Usage: `cargo run -p matraptor-bench --bin table1_area_power`

use matraptor_bench::print_table;
use matraptor_energy::{table1, MatRaptorFloorplan, TechNode};

fn main() {
    println!("Table I — area and power breakdown (TSMC 28 nm)\n");
    let t = table1();
    let total_area: f64 = t.iter().filter(|r| !r.sub_item).map(|r| r.cost.area_mm2).sum();
    let total_power: f64 = t.iter().filter(|r| !r.sub_item).map(|r| r.cost.power_mw).sum();

    let mut rows: Vec<Vec<String>> = t
        .iter()
        .map(|r| {
            vec![
                if r.sub_item { format!("- {}", r.name) } else { r.name.to_string() },
                format!("{:.3}", r.cost.area_mm2),
                format!("{:.2}%", 100.0 * r.cost.area_mm2 / total_area),
                format!("{:.2}", r.cost.power_mw),
                format!("{:.2}%", 100.0 * r.cost.power_mw / total_power),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        format!("{total_area:.3}"),
        "100%".into(),
        format!("{total_power:.2}"),
        "100%".into(),
    ]);
    print_table(&["Component", "Area (mm2)", "%", "Power (mW)", "%"], &rows);

    let fp = MatRaptorFloorplan::default();
    println!("\nDerived comparisons:");
    let os_area_32 = 87.0; // OuterSPACE's published area at 32 nm
    let os_area_28 = os_area_32 * TechNode::N32.area_factor_to(TechNode::N28);
    println!(
        "  OuterSPACE 87 mm2 @32nm -> {:.1} mm2 @28nm (paper: 70.2); ratio {:.1}x (paper: 31.3x)",
        os_area_28,
        os_area_28 / fp.area_mm2()
    );
    println!(
        "  MatRaptor power {:.2} W; OuterSPACE ~{:.1} W @28nm -> {:.1}x (paper: 7.2x)",
        fp.power_w(),
        9.7,
        9.7 / fp.power_w()
    );

    println!("\nFloorplan scaling (CACTI-style, SRAM-dominated):");
    let mut frows = Vec::new();
    for (lanes, q, bytes) in [(8, 10, 4096), (8, 10, 8192), (16, 10, 4096), (8, 5, 4096)] {
        let f = MatRaptorFloorplan { num_lanes: lanes, queues_per_pe: q, queue_bytes: bytes };
        frows.push(vec![
            format!("{lanes} lanes, {q} x {} KB", bytes / 1024),
            format!("{:.3}", f.area_mm2()),
            format!("{:.2}", f.power_w()),
        ]);
    }
    print_table(&["configuration", "area (mm2)", "power (W)"], &frows);
}
