//! Hostile-wire campaign: a real loopback TCP server under a scripted
//! wire-fault schedule interleaved with clean traffic.
//!
//! The campaign starts a [`WireServer`] on `127.0.0.1:0`, then runs
//! `--rounds` passes over the full fault repertoire
//! ([`WireFaultKind::ALL`]): each pass interleaves one clean job
//! (submit → poll to resolution) with one injected fault and a
//! fresh-connection liveness probe, so every hostile act is bracketed by
//! proof the server still serves. Scripted taxonomy probes (invalid
//! shapes, unknown tenants/jobs, cancellation, queue-full backpressure)
//! pin the admission mapping, and the run ends with a graceful shutdown
//! whose drain must finish or checkpoint every job still queued.
//!
//! The JSON report has two sections. `deterministic` is a pure function
//! of the seed and schedule — per-fault-kind survival/reject/escape
//! counts, clean-traffic resolution fingerprint, taxonomy tallies, drain
//! accounting with checkpoint fingerprints — and `--strict` re-runs the
//! whole campaign requiring that section byte-identical, plus zero
//! server panics and zero protocol escapes. `wall_clock` holds what real
//! TCP cannot make deterministic (latency percentiles, raw wire
//! counters) and is exempt from the byte-identity gate.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin wire_campaign --
//! [--seed N|0xN] [--rounds N] [--json] [--strict] [--out PATH]`

use std::time::Instant;

use matraptor_service::wire::{
    fault, InjectorConfig, JobState, Response, RetryPolicy, WireClient, WireFaultKind, WireServer,
    WireServerConfig,
};
use matraptor_service::ServiceConfig;
use matraptor_sim::trace::fnv1a64;
use matraptor_sparse::gen;
use matraptor_sparse::rng::ChaCha8Rng;

struct Options {
    seed: u64,
    rounds: u64,
    json: bool,
    strict: bool,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options { seed: 0xA7, rounds: 3, json: false, strict: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => opts.seed = parse_u64(args.next()),
            "--rounds" => opts.rounds = parse_u64(args.next()).max(1),
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--out" => opts.out = args.next(),
            other => {
                panic!("unknown argument {other}; supported: --seed N --rounds N --json --strict --out PATH")
            }
        }
    }
    opts
}

fn parse_u64(v: Option<String>) -> u64 {
    let Some(s) = v else { panic!("missing numeric argument") };
    let parsed =
        if let Some(hex) = s.strip_prefix("0x") { u64::from_str_radix(hex, 16) } else { s.parse() };
    match parsed {
        Ok(n) => n,
        Err(_) => panic!("bad numeric argument {s}"),
    }
}

/// Per-fault-kind tallies (deterministic under a fixed schedule).
#[derive(Debug, Clone, Copy, Default)]
struct KindTally {
    injected: u64,
    contract_ok: u64,
    escapes: u64,
}

struct CampaignResult {
    /// The deterministic section, exactly as emitted (strict compares it).
    core_json: String,
    /// The full report.
    json: String,
    escapes: u64,
    panics: u64,
    queued_at_shutdown: u64,
    drained_total: u64,
    drained_checkpointed: u64,
    queue_full: u64,
    clean_completed: u64,
    clean_submitted: u64,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len().saturating_sub(1)).saturating_mul(p) / 100;
    sorted[idx.min(sorted.len() - 1)]
}

/// Campaign server posture: fast read deadlines so stall/loris cases
/// resolve in milliseconds, and a drain slice small enough to force the
/// checkpoint pause path on the jobs left queued at shutdown.
fn campaign_server(seed: u64) -> WireServer {
    let _ = seed;
    let mut cfg = WireServerConfig::local(ServiceConfig::small_test());
    cfg.read_timeout_ms = 5;
    cfg.idle_reads = 30; // 150 ms idle timeout
    cfg.frame_reads = 64; // split writes fit, slow loris does not
    cfg.drain_slice_cycles = 300;
    WireServer::start(cfg, "127.0.0.1:0").expect("bind loopback server")
}

fn expect_submitted(resp: Result<Response, matraptor_service::wire::ClientError>) -> Option<u64> {
    match resp {
        Ok(Response::Submitted { job }) => Some(job),
        _ => None,
    }
}

fn run_campaign(opts: &Options) -> CampaignResult {
    let server = campaign_server(opts.seed);
    let addr = server.addr();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut client = WireClient::connect(addr, RetryPolicy::default_local(), opts.seed ^ 0xC11E)
        .expect("connect campaign client");

    let mut inj_cfg = InjectorConfig::default_local();
    inj_cfg.read_timeout_ms = 5;
    inj_cfg.observe_reads = 400;
    inj_cfg.loris_pace_ms = 12;

    let mut tallies = [KindTally::default(); WireFaultKind::ALL.len()];
    let mut escapes = 0u64;
    let mut clean_submitted = 0u64;
    let mut clean_completed = 0u64;
    let mut resolution_hash: Vec<u8> = Vec::new();
    let mut ping_us: Vec<u64> = Vec::new();
    let mut submit_us: Vec<u64> = Vec::new();
    let mut poll_us: Vec<u64> = Vec::new();

    // Phase 1: clean traffic interleaved with the hostile schedule.
    for round in 0..opts.rounds {
        for (ki, kind) in WireFaultKind::ALL.iter().enumerate() {
            // One clean job, submitted and polled to resolution.
            let n = 16 + (rng.next_u64() % 16) as usize;
            let nnz = n * 4;
            let a = gen::uniform(n, n, nnz, rng.next_u64());
            let b = gen::uniform(n, n, nnz, rng.next_u64());
            let tenant = (round % 2) as u32;
            clean_submitted += 1;
            // Heal the connection first: the previous fault may have taken
            // longer than the server's idle timeout, closing our stream.
            // Ping retries (and reconnects) — submit deliberately does not.
            if !matches!(client.ping(), Ok(Response::Pong)) {
                escapes += 1;
            }
            let t0 = Instant::now();
            let submitted = expect_submitted(client.submit(tenant, &a, &b));
            submit_us.push(t0.elapsed().as_micros() as u64);
            match submitted {
                Some(job) => {
                    let t1 = Instant::now();
                    match client.poll(job) {
                        Ok(Response::Status {
                            state: JobState::Resolved { disposition, attempts, finished_at },
                            ..
                        }) => {
                            clean_completed += 1;
                            resolution_hash.extend_from_slice(&job.to_le_bytes());
                            resolution_hash.push(disposition);
                            resolution_hash.extend_from_slice(&attempts.to_le_bytes());
                            resolution_hash.extend_from_slice(&finished_at.to_le_bytes());
                        }
                        _ => escapes += 1,
                    }
                    poll_us.push(t1.elapsed().as_micros() as u64);
                }
                None => escapes += 1,
            }

            // One hostile act.
            let obs = fault::inject(addr, *kind, &inj_cfg, &mut rng);
            tallies[ki].injected += 1;
            if obs.matches_contract() {
                tallies[ki].contract_ok += 1;
            } else {
                tallies[ki].escapes += 1;
                escapes += 1;
            }

            // Liveness probe on a fresh connection.
            let t2 = Instant::now();
            let probe = WireClient::connect(addr, RetryPolicy::default_local(), rng.next_u64())
                .and_then(|mut c| c.ping());
            ping_us.push(t2.elapsed().as_micros() as u64);
            if !matches!(probe, Ok(Response::Pong)) {
                escapes += 1;
            }
        }
    }

    // Phase 2: scripted taxonomy probes over the wire.
    let mut tax_invalid_shape = 0u64;
    let mut tax_unknown_tenant = 0u64;
    let mut tax_unknown_job = 0u64;
    let mut tax_cancelled = 0u64;
    {
        use matraptor_service::wire::RejectCode;
        // Heal after the last fault of phase 1 (idle timeout, as above).
        if !matches!(client.ping(), Ok(Response::Pong)) {
            escapes += 1;
        }
        let a = gen::uniform(8, 9, 20, rng.next_u64());
        let b = gen::uniform(10, 8, 20, rng.next_u64());
        match client.submit(0, &a, &b) {
            Ok(Response::Error { code: RejectCode::InvalidShape, .. }) => tax_invalid_shape += 1,
            _ => escapes += 1,
        }
        let a = gen::uniform(8, 8, 20, rng.next_u64());
        let b = gen::uniform(8, 8, 20, rng.next_u64());
        match client.submit(99, &a, &b) {
            Ok(Response::Error { code: RejectCode::UnknownTenant, .. }) => tax_unknown_tenant += 1,
            _ => escapes += 1,
        }
        match client.poll(1_000_000_007) {
            Ok(Response::Error { code: RejectCode::UnknownJob, .. }) => tax_unknown_job += 1,
            _ => escapes += 1,
        }
        // Cancel a queued job, then confirm its disposition over the wire.
        if let Some(job) = expect_submitted(client.submit(0, &a, &b)) {
            match client.cancel(job) {
                Ok(Response::CancelResult { ok: true, .. }) => {}
                _ => escapes += 1,
            }
            match client.poll(job) {
                Ok(Response::Status {
                    state: JobState::Resolved { disposition: 4, .. }, ..
                }) => tax_cancelled += 1,
                _ => escapes += 1,
            }
        } else {
            escapes += 1;
        }
    }

    // Phase 3: backpressure — oversubmit one tenant until QueueFull, then
    // leave the queue loaded so shutdown has real work to drain.
    let mut queue_full = 0u64;
    let mut queued_jobs = 0u64;
    {
        use matraptor_service::wire::RejectCode;
        for _ in 0..64 {
            let n = 24 + (rng.next_u64() % 8) as usize;
            let a = gen::uniform(n, n, n * 6, rng.next_u64());
            let b = gen::uniform(n, n, n * 6, rng.next_u64());
            match client.submit(1, &a, &b) {
                Ok(Response::Submitted { .. }) => queued_jobs += 1,
                Ok(Response::Error { code: RejectCode::QueueFull, .. }) => {
                    queue_full += 1;
                    if queue_full >= 3 {
                        break;
                    }
                }
                _ => {
                    escapes += 1;
                    break;
                }
            }
        }
    }

    // Phase 4: graceful shutdown — the drain must finish or checkpoint
    // every job still queued, reply-flushed, zero panics.
    let down = server.shutdown();
    let drained_total = down
        .drained_completed
        .saturating_add(down.drained_checkpointed)
        .saturating_add(down.drained_deadline_exceeded)
        .saturating_add(down.drained_failed);
    if down.jobs_accepted != down.jobs_resolved {
        escapes += 1; // a job vanished without a disposition
    }

    // ---- report ----
    let fault_objects: Vec<String> = WireFaultKind::ALL
        .iter()
        .zip(tallies.iter())
        .map(|(kind, t)| {
            format!(
                "{{\"kind\":\"{}\",\"injected\":{},\"contract_ok\":{},\"escapes\":{}}}",
                kind.label(),
                t.injected,
                t.contract_ok,
                t.escapes
            )
        })
        .collect();
    let fingerprint_objects: Vec<String> =
        down.checkpoint_fingerprints.iter().map(|f| format!("\"{f:#018x}\"")).collect();

    let core_body = format!(
        "{{\"faults\":[{}],\
\"clean\":{{\"submitted\":{clean_submitted},\"resolved\":{clean_completed},\"resolution_fnv1a\":\"{:#018x}\"}},\
\"taxonomy\":{{\"invalid_shape\":{tax_invalid_shape},\"unknown_tenant\":{tax_unknown_tenant},\"unknown_job\":{tax_unknown_job},\"cancelled\":{tax_cancelled},\"queue_full\":{queue_full}}},\
\"drain\":{{\"queued_at_shutdown\":{queued_jobs},\"completed\":{},\"checkpointed\":{},\"deadline_exceeded\":{},\"failed\":{},\"checkpoint_fingerprints\":[{}]}},\
\"accounting\":{{\"jobs_accepted\":{},\"jobs_resolved\":{},\"thread_panics\":{},\"escapes_total\":{escapes}}}",
        fault_objects.join(","),
        fnv1a64(&resolution_hash),
        down.drained_completed,
        down.drained_checkpointed,
        down.drained_deadline_exceeded,
        down.drained_failed,
        fingerprint_objects.join(","),
        down.jobs_accepted,
        down.jobs_resolved,
        down.thread_panics,
    );
    let core_json =
        format!("{core_body},\"core_fnv1a\":\"{:#018x}\"}}", fnv1a64(core_body.as_bytes()));

    submit_us.sort_unstable();
    poll_us.sort_unstable();
    ping_us.sort_unstable();
    let c = down.counters;
    let wall = format!(
        "{{\"latency_us\":{{\"submit\":{{\"p50\":{},\"p99\":{}}},\"poll\":{{\"p50\":{},\"p99\":{}}},\"ping\":{{\"p50\":{},\"p99\":{}}}}},\
\"wire_counters\":{{\"accepted\":{},\"busy_rejected\":{},\"drain_rejected\":{},\"frames_ok\":{},\"replies_sent\":{},\"bad_magic\":{},\"bad_version\":{},\"bad_checksum\":{},\"frame_too_large\":{},\"truncated\":{},\"timed_out\":{},\"idle_closed\":{},\"malformed\":{},\"unknown_op\":{},\"clean_closed\":{},\"io_errors\":{}}}}}",
        percentile(&submit_us, 50),
        percentile(&submit_us, 99),
        percentile(&poll_us, 50),
        percentile(&poll_us, 99),
        percentile(&ping_us, 50),
        percentile(&ping_us, 99),
        c.accepted,
        c.busy_rejected,
        c.drain_rejected,
        c.frames_ok,
        c.replies_sent,
        c.bad_magic,
        c.bad_version,
        c.bad_checksum,
        c.frame_too_large,
        c.truncated,
        c.timed_out,
        c.idle_closed,
        c.malformed,
        c.unknown_op,
        c.clean_closed,
        c.io_errors,
    );
    let body = format!(
        "{{\"campaign\":{{\"seed\":{},\"rounds\":{},\"fault_kinds\":{}}},\"deterministic\":{core_json},\"wall_clock\":{wall}",
        opts.seed,
        opts.rounds,
        WireFaultKind::ALL.len(),
    );
    let json = format!("{body},\"report_fnv1a\":\"{:#018x}\"}}", fnv1a64(body.as_bytes()));

    CampaignResult {
        core_json,
        json,
        escapes,
        panics: down.thread_panics,
        queued_at_shutdown: queued_jobs,
        drained_total,
        drained_checkpointed: down.drained_checkpointed,
        queue_full,
        clean_completed,
        clean_submitted,
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "Wire campaign — seed {:#x}, {} round(s) over {} fault kinds on loopback TCP\n",
        opts.seed,
        opts.rounds,
        WireFaultKind::ALL.len()
    );
    let result = run_campaign(&opts);

    println!("clean jobs           {}/{} resolved", result.clean_completed, result.clean_submitted);
    println!("protocol escapes     {}", result.escapes);
    println!("server panics        {}", result.panics);
    println!("queue-full bounces   {}", result.queue_full);
    println!(
        "drain                {} queued -> {} drained ({} checkpointed)",
        result.queued_at_shutdown, result.drained_total, result.drained_checkpointed
    );

    // The report must itself be well-formed JSON (same gate CI applies
    // through json_lint).
    if let Err((at, why)) = matraptor_bench::json::validate(&result.json) {
        eprintln!("report JSON invalid at byte {at}: {why}");
        std::process::exit(1);
    }

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, format!("{}\n", result.json)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    if opts.json {
        println!("\n{}", result.json);
    }

    if opts.strict {
        let mut failures: Vec<String> = Vec::new();
        if result.escapes > 0 {
            failures.push(format!("{} protocol escape(s)", result.escapes));
        }
        if result.panics > 0 {
            failures.push(format!("{} server thread panic(s)", result.panics));
        }
        if result.queued_at_shutdown != result.drained_total {
            failures.push(format!(
                "drain accounting mismatch: {} queued but {} drained",
                result.queued_at_shutdown, result.drained_total
            ));
        }
        if result.drained_checkpointed == 0 {
            failures.push("drain exercised no checkpoint (slice budget too generous)".to_string());
        }
        if result.queue_full == 0 {
            failures.push("no QueueFull backpressure observed over the wire".to_string());
        }
        if result.clean_completed < result.clean_submitted {
            failures.push(format!(
                "only {} of {} clean jobs resolved",
                result.clean_completed, result.clean_submitted
            ));
        }
        // Replay determinism: the deterministic core, byte for byte, from
        // a fresh server on a fresh port.
        let replay = run_campaign(&opts);
        if replay.core_json != result.core_json {
            failures.push("deterministic core not byte-identical across two runs".to_string());
        } else {
            println!(
                "\nstrict: deterministic core byte-identical ({} bytes)",
                result.core_json.len()
            );
        }
        if replay.escapes > 0 || replay.panics > 0 {
            failures.push("replay run observed escapes or panics".to_string());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("STRICT: {f}");
            }
            std::process::exit(1);
        }
        println!("strict: all acceptance checks passed");
    }
}
