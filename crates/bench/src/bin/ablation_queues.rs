//! Ablation — sorting-queue provisioning.
//!
//! Sweeps the two queue parameters the paper fixes at 10 × 4 KB and shows
//! what they buy: fewer queues mean more Phase I merge traffic (vectors
//! beyond Q−1 must two-way merge) and smaller queues mean more Section VII
//! overflows, while SRAM is 84 % of the accelerator's area (Table I), so
//! over-provisioning is expensive. Prints cycles, overflow counts, and the
//! area/power of each configuration.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin ablation_queues -- [--scale N] [--seed N]`

use matraptor_bench::{print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};
use matraptor_energy::MatRaptorFloorplan;
use matraptor_sparse::gen::suite;

fn main() {
    let opts = Options::from_args();
    // A power-law matrix stresses queue capacity (hub output rows) and a
    // dense-ish one stresses merge traffic.
    let a = suite::by_id("wg").expect("wg").generate(opts.scale * 2, opts.seed);
    let b = suite::by_id("fb").expect("fb").generate(opts.scale, opts.seed);

    println!(
        "Ablation — queue count x queue size, on wg (power-law, N={}) and fb (dense, N={})\n",
        a.rows(),
        b.rows()
    );

    let mut rows = Vec::new();
    for queues in [4usize, 6, 10, 16] {
        for queue_bytes in [1024usize, 4096, 16384] {
            let cfg = MatRaptorConfig {
                queues_per_pe: queues,
                queue_bytes,
                verify_against_reference: false,
                ..MatRaptorConfig::default()
            };
            let accel = Accelerator::new(cfg);
            let ra = accel.run(&a, &a);
            let rb = accel.run(&b, &b);
            let fp = MatRaptorFloorplan { num_lanes: 8, queues_per_pe: queues, queue_bytes };
            rows.push(vec![
                format!("{queues} x {} KB", queue_bytes / 1024),
                format!("{}", ra.stats.total_cycles),
                format!("{}", ra.stats.overflow_rows),
                format!("{}", rb.stats.total_cycles),
                format!("{}", rb.stats.overflow_rows),
                format!("{:.2}", fp.area_mm2()),
                format!("{:.2}", fp.power_w()),
            ]);
        }
    }
    print_table(
        &[
            "queues/PE",
            "wg cycles",
            "wg overflows",
            "fb cycles",
            "fb overflows",
            "area mm2",
            "power W",
        ],
        &rows,
    );
    println!("\npaper's choice: 10 x 4 KB — enough capacity to keep overflows rare at");
    println!("a fraction of the SRAM cost of the next size up.");
}
