//! Observability report over the Table II synthetic suite.
//!
//! For every suite matrix this runs A×A through
//! [`Accelerator::try_run_traced`] and checks the layer's two contracts:
//!
//! 1. **Attribution totality** — for every lane and every pipeline stage
//!    (SpAL, SpBL, PE, Writer), busy + mem-stall + queue-stall + idle
//!    equals the run's total cycles: no cycle is dropped or double-charged.
//! 2. **Determinism** — the Chrome-trace export of each run and the
//!    machine-readable summary are pure functions of the inputs; with
//!    `--strict` the whole suite is run twice and both must be
//!    byte-identical, and every exported Chrome trace must parse as JSON.
//!
//! The summary is a [`MetricsRegistry`] (per-matrix cycle totals, stage
//! buckets summed over lanes, HBM traffic, queue-depth stats, trace
//! fingerprints) rendered to deterministic JSON and FNV-1a-fingerprinted —
//! the byte-level identity CI pins.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin trace_report --
//! [--scale N] [--seed N] [--window N] [--json] [--strict]
//! [--chrome-dir DIR]`

use std::fmt::Write as _;

use matraptor_bench::{json, load_suite, print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig, RunTrace, TraceConfig};
use matraptor_sim::trace::{fnv1a64, MetricsRegistry, StageBreakdown};

struct ReportOptions {
    base: Options,
    /// Sampling window in accelerator cycles.
    window: u64,
    /// Run the suite twice and require byte-identical artifacts.
    strict: bool,
    /// Write each matrix's Chrome trace under this directory.
    chrome_dir: Option<String>,
}

fn parse_args() -> ReportOptions {
    let mut opts =
        ReportOptions { base: Options::default(), window: 256, strict: false, chrome_dir: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                opts.base.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a positive integer"));
            }
            "--seed" => {
                opts.base.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"));
            }
            "--window" => {
                opts.window = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--window needs a positive integer"));
            }
            "--json" => opts.base.json = true,
            "--strict" => opts.strict = true,
            "--chrome-dir" => {
                opts.chrome_dir =
                    Some(args.next().unwrap_or_else(|| panic!("--chrome-dir needs a path")));
            }
            other => panic!(
                "unknown argument {other}; supported: --scale N --seed N --window N \
                 --json --strict --chrome-dir DIR"
            ),
        }
    }
    assert!(opts.base.scale > 0, "--scale must be positive");
    assert!(opts.window > 0, "--window must be positive");
    opts
}

/// One matrix's worth of results.
struct MatrixReport {
    id: &'static str,
    total_cycles: u64,
    /// Per-stage buckets summed over lanes, in pipeline order.
    stages: [(&'static str, StageBreakdown); 4],
    chrome_json: String,
    chrome_fingerprint: u64,
    /// Attribution-totality violations (`lane.stage: total != cycles`).
    violations: Vec<String>,
}

/// Everything one pass over the suite produces: the per-matrix reports and
/// the deterministic summary the strict gate compares byte-for-byte.
struct SuiteReport {
    matrices: Vec<MatrixReport>,
    summary_json: String,
    summary_fingerprint: u64,
}

fn check_attribution(
    id: &str,
    trace: &RunTrace,
    stats: &matraptor_core::MatRaptorStats,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (lane, attr) in stats.per_lane_attribution.iter().enumerate() {
        for (stage, b) in attr.stages() {
            if b.total() != stats.total_cycles {
                violations.push(format!(
                    "{id}: lane{lane}.{stage} buckets sum to {} but the run took {} cycles",
                    b.total(),
                    stats.total_cycles
                ));
            }
        }
    }
    // The windowed timeline must reassemble to the same cumulative story:
    // each lane's per-window deltas sum to the run's total cycles per stage.
    for lane in &trace.lanes {
        for (stage, pick) in [("spal", 0usize), ("spbl", 1), ("pe", 2), ("writer", 3)] {
            let windowed: u64 = lane
                .windows
                .iter()
                .map(|w| [w.spal, w.spbl, w.pe, w.writer][pick].iter().sum::<u64>())
                .sum();
            if windowed != trace.total_cycles {
                violations.push(format!(
                    "{id}: lane{}.{stage} windowed deltas sum to {windowed}, \
                     expected {} — the sampler lost cycles",
                    lane.lane, trace.total_cycles
                ));
            }
        }
    }
    violations
}

fn run_suite(opts: &ReportOptions) -> SuiteReport {
    let suite = load_suite(&opts.base);
    let accel = Accelerator::new(MatRaptorConfig::default());
    let trace_cfg = TraceConfig { window: opts.window, ..TraceConfig::default() };

    let mut registry = MetricsRegistry::new();
    registry.set_counter("config.scale", opts.base.scale as u64);
    registry.set_counter("config.seed", opts.base.seed);
    registry.set_counter("config.window", opts.window);

    let mut matrices = Vec::new();
    for m in &suite {
        let id = m.spec.id;
        let (outcome, trace) = accel
            .try_run_traced(&m.matrix, &m.matrix, None, &trace_cfg)
            .unwrap_or_else(|e| panic!("clean traced run failed on `{id}`: {e}"));
        let stats = &outcome.stats;
        let violations = check_attribution(id, &trace, stats);

        // Aggregate each stage across lanes for the summary and table.
        let mut stages = [
            ("spal", StageBreakdown::default()),
            ("spbl", StageBreakdown::default()),
            ("pe", StageBreakdown::default()),
            ("writer", StageBreakdown::default()),
        ];
        for attr in &stats.per_lane_attribution {
            for (agg, (_, b)) in stages.iter_mut().zip(attr.stages()) {
                agg.1.merge_from(b);
            }
        }

        registry.set_counter(&format!("{id}.total_cycles"), stats.total_cycles);
        registry.set_counter(&format!("{id}.traffic_read"), stats.traffic_read);
        registry.set_counter(&format!("{id}.traffic_written"), stats.traffic_written);
        for (stage, b) in &stages {
            for (bucket, v) in [
                ("busy", b.busy),
                ("mem_stall", b.mem_stall),
                ("queue_stall", b.queue_stall),
                ("idle", b.idle),
            ] {
                registry.set_counter(&format!("{id}.{stage}.{bucket}"), v.get());
            }
        }
        let queue_depth_max = trace.channels.iter().map(|c| c.queue_depth.max()).max().unwrap_or(0);
        registry.set_counter(&format!("{id}.queue_depth_max"), queue_depth_max);
        registry.set_counter(&format!("{id}.windows"), trace.lanes[0].windows.len() as u64);

        let chrome_json = trace.to_chrome_trace().to_json();
        let chrome_fingerprint = fnv1a64(chrome_json.as_bytes());
        registry.set_counter(&format!("{id}.chrome_fingerprint"), chrome_fingerprint);

        matrices.push(MatrixReport {
            id,
            total_cycles: stats.total_cycles,
            stages,
            chrome_json,
            chrome_fingerprint,
            violations,
        });
    }

    let mut summary_json = String::new();
    let _ = write!(
        summary_json,
        "{{\"suite\":\"table2\",\"matrices\":{},\"metrics\":{}}}",
        matrices.len(),
        registry.to_json()
    );
    let summary_fingerprint = fnv1a64(summary_json.as_bytes());
    SuiteReport { matrices, summary_json, summary_fingerprint }
}

fn main() {
    let opts = parse_args();
    println!(
        "Trace report — Table II suite at scale {}, seed {}, window {} cycles\n",
        opts.base.scale, opts.base.seed, opts.window
    );

    let report = run_suite(&opts);

    let pct = |part: u64, cycles: u64| {
        if cycles == 0 {
            "0%".to_string()
        } else {
            format!("{:.0}%", part as f64 / cycles as f64 * 100.0)
        }
    };
    let rows: Vec<Vec<String>> = report
        .matrices
        .iter()
        .map(|m| {
            // Lanes × stages all total the same cycle count, so the
            // aggregate denominator is cycles × lane-count per stage.
            let denom = m.stages[0].1.total();
            let mut row = vec![m.id.to_string(), format!("{}", m.total_cycles)];
            for (_, b) in &m.stages {
                row.push(format!(
                    "{}/{}/{}/{}",
                    pct(b.busy.get(), denom),
                    pct(b.mem_stall.get(), denom),
                    pct(b.queue_stall.get(), denom),
                    pct(b.idle.get(), denom)
                ));
            }
            row.push(if m.violations.is_empty() { "ok".into() } else { "VIOLATED".into() });
            row
        })
        .collect();
    print_table(
        &[
            "matrix",
            "cycles",
            "spal b/m/q/i",
            "spbl b/m/q/i",
            "pe b/m/q/i",
            "writer b/m/q/i",
            "attribution",
        ],
        &rows,
    );

    let mut failed = false;
    for m in &report.matrices {
        for v in &m.violations {
            eprintln!("ATTRIBUTION: {v}");
            failed = true;
        }
        if let Err((pos, why)) = json::validate(&m.chrome_json) {
            eprintln!("CHROME-JSON: `{}` trace is not valid JSON at byte {pos}: {why}", m.id);
            failed = true;
        }
    }

    if let Some(dir) = &opts.chrome_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
        for m in &report.matrices {
            let path = format!("{dir}/{}.trace.json", m.id);
            std::fs::write(&path, &m.chrome_json)
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
        println!(
            "\nwrote {} Chrome traces to {dir}/ (load in chrome://tracing or Perfetto)",
            report.matrices.len()
        );
    }

    if opts.strict {
        // The whole pipeline again, from matrix generation up: the summary
        // bytes and every per-run Chrome trace must be identical.
        let replay = run_suite(&opts);
        if replay.summary_json != report.summary_json {
            eprintln!("STRICT: summary JSON differs between two identical runs");
            failed = true;
        }
        for (a, b) in report.matrices.iter().zip(&replay.matrices) {
            if a.chrome_fingerprint != b.chrome_fingerprint {
                eprintln!("STRICT: Chrome trace for `{}` differs between runs", a.id);
                failed = true;
            }
        }
        if !failed {
            println!(
                "\nstrict: replay byte-identical (summary fingerprint {:#018x})",
                report.summary_fingerprint
            );
        }
    }

    if opts.base.json {
        println!(
            "\n{{\"report\":{},\"summary_fnv1a\":\"{:#018x}\"}}",
            report.summary_json, report.summary_fingerprint
        );
    }

    if failed {
        std::process::exit(1);
    }
}
