//! Fault-tolerant fleet campaign: 10k+ jobs across a multi-worker fleet
//! with scripted worker failures.
//!
//! Drives [`matraptor_service::Fleet`] — N simulated accelerator workers
//! plus a CPU-fallback tier behind the shared admission front end — with a
//! seeded stream of mixed-size SpGEMM jobs while a scripted
//! [`WorkerFaultPlan`] kills, hangs, and degrades workers mid-campaign:
//!
//! * **crashes** at checkpoint boundaries: the in-flight job re-dispatches
//!   from its last checkpoint to a healthy peer, byte-identically;
//! * **hangs**: heartbeat silence past the liveness window recycles the
//!   worker;
//! * a **slowdown** severe enough that its slice wall time breaches the
//!   window — dead-in-practice, treated as dead;
//! * a **lost-ack crash** right after a completion, which the at-most-once
//!   accounting must suppress (zero double-completions);
//! * one worker is failed repeatedly until it walks the whole recovery
//!   ladder — restart, reduced-lanes degradation, retirement — with its
//!   share shed to the CPU tier;
//! * plus the service-layer adversity of the stress campaign: sporadic
//!   fault-plan jobs, a poison pair that must land in fleet-wide
//!   quarantine, and a deadlock burst that trips the circuit breaker
//!   through a full open → half-open → closed cycle.
//!
//! The output is a single JSON SLO report: totals, fleet recovery
//! counters, the recovery log, per-worker utilization (pulled from the
//! metrics registry), latency percentiles, and the breaker transition log.
//! `--strict` re-runs the whole campaign and fails unless the report is
//! byte-identical, plus checks the acceptance invariants (zero escapes,
//! zero double-completions, at least one checkpoint resume and one
//! retirement shed to CPU, queue drained). A separate `BENCH_fleet.json`
//! records wall-clock throughput (jobs/s and simulated cycles/s) — kept
//! out of the strict-compared report because wall time is not
//! deterministic.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fleet_campaign --
//! [--seed N|0xN] [--jobs N] [--json] [--strict] [--bench-out PATH]`

use std::rc::Rc;
use std::time::Instant;

use matraptor_bench::harness::percentile;
use matraptor_core::{FaultKind, FaultPlan, MatRaptorConfig};
use matraptor_service::{
    BreakerConfig, BreakerState, DeadlinePolicy, Fleet, FleetConfig, JobSpec, Rejected,
    ServiceConfig, TenantConfig, TenantId, WorkerClass, WorkerFault, WorkerFaultEvent,
    WorkerFaultPlan,
};
use matraptor_sim::trace::fnv1a64;
use matraptor_sparse::{gen, rng::ChaCha8Rng, Csr};

/// A shared (A, B) operand pair.
type MatPair = (Rc<Csr<f64>>, Rc<Csr<f64>>);

struct Options {
    seed: u64,
    jobs: u64,
    json: bool,
    strict: bool,
    bench_out: Option<String>,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Options {
    let mut opts =
        Options { seed: 0xBEEF, jobs: 10_000, json: false, strict: false, bench_out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| parse_u64(&v))
                    .expect("--seed needs an integer (decimal or 0x-hex)")
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| parse_u64(&v))
                    .expect("--jobs needs an integer (decimal or 0x-hex)")
                    .max(1)
            }
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--bench-out" => {
                opts.bench_out = Some(args.next().expect("--bench-out needs a path"))
            }
            other => panic!(
                "unknown argument {other}; supported: --seed N --jobs N --json --strict --bench-out PATH"
            ),
        }
    }
    opts
}

/// In-flight depth the submitter maintains — enough to keep every worker
/// of the fleet fed, shallow enough that ordinary traffic never trips the
/// bounded-queue rejection.
const TARGET_BACKLOG: usize = 24;

const ACCEL_WORKERS: usize = 6;
const CPU_WORKERS: usize = 2;

fn fleet_config(seed: u64, jobs: u64) -> FleetConfig {
    let mut accel = MatRaptorConfig::small_test();
    accel.watchdog_window = 2_000;
    accel.verify_against_reference = false;
    accel.abft_verification = true;
    let service = ServiceConfig {
        accel,
        tenants: vec![
            TenantConfig {
                name: "batch".to_string(),
                weight: 4,
                queue_capacity: 64,
                deadline: deadline_loose(),
            },
            TenantConfig {
                name: "interactive".to_string(),
                weight: 2,
                queue_capacity: 48,
                deadline: deadline_loose(),
            },
            TenantConfig {
                name: "analytics".to_string(),
                weight: 1,
                queue_capacity: 48,
                deadline: deadline_loose(),
            },
            // Tight flat budget: oversized free-tier jobs are cancelled at
            // a checkpoint boundary instead of hogging a worker.
            TenantConfig {
                name: "free".to_string(),
                weight: 1,
                queue_capacity: 32,
                deadline: DeadlinePolicy { base_cycles: 12_000, cycles_per_flop: 0 },
            },
        ],
        quantum_cycles: 200_000,
        breaker: BreakerConfig {
            failure_threshold: 4,
            cooldown_cycles: 600_000,
            max_backoff_doublings: 4,
        },
        quarantine_threshold: 2,
        max_attempts: 2,
        cpu_cycles_per_flop: 64,
    };
    FleetConfig {
        service,
        accel_workers: ACCEL_WORKERS,
        cpu_workers: CPU_WORKERS,
        slice_cycles: 4_096,
        heartbeat_window: 150_000,
        restart_cycles: 50_000,
        max_restarts: 1,
        max_degraded_restarts: 1,
        worker_faults: Some(worker_fault_script(seed, jobs)),
        recovery_log_cap: 4_096,
    }
}

fn deadline_loose() -> DeadlinePolicy {
    DeadlinePolicy { base_cycles: 2_000_000, cycles_per_flop: 400 }
}

/// The scripted worker-failure schedule. Thresholds are slice counts per
/// worker, placed early enough to fire even for small `--jobs` floors; the
/// sampled tail adds seed-varied background failures on top.
fn worker_fault_script(seed: u64, jobs: u64) -> WorkerFaultPlan {
    // Spread a few late events through the campaign for large runs without
    // ever placing one past what a small run reaches.
    let late = (jobs / 4).clamp(60, 2_000);
    let mut events = vec![
        // Crashes at checkpoint boundaries: jobs resume on healthy peers.
        WorkerFaultEvent { worker: 0, after_slices: 15, kind: WorkerFault::Crash },
        WorkerFaultEvent { worker: 2, after_slices: late, kind: WorkerFault::Crash },
        // Hangs: found by the heartbeat window, not by an error return.
        WorkerFaultEvent { worker: 1, after_slices: 30, kind: WorkerFault::Hang },
        WorkerFaultEvent { worker: 3, after_slices: late / 2, kind: WorkerFault::Hang },
        // Slow enough to be indistinguishable from dead (slice wall time
        // 4096 x 60 breaches the 150k window).
        WorkerFaultEvent {
            worker: 4,
            after_slices: 25,
            kind: WorkerFault::SlowDown { factor: 60 },
        },
        // The lost-ack race: completes, then dies before the ack lands.
        WorkerFaultEvent { worker: 4, after_slices: 45, kind: WorkerFault::CrashAfterCompletion },
        // Worker 5 walks the whole ladder: restart, degrade, retire.
        WorkerFaultEvent { worker: 5, after_slices: 10, kind: WorkerFault::Crash },
        WorkerFaultEvent { worker: 5, after_slices: 22, kind: WorkerFault::Crash },
        WorkerFaultEvent { worker: 5, after_slices: 34, kind: WorkerFault::Crash },
    ];
    events.extend(WorkerFaultPlan::sample(seed ^ 0xFA, ACCEL_WORKERS, 8).events().to_vec());
    WorkerFaultPlan::new(events)
}

/// Square matrices grouped by dimension class so any two picks from one
/// class multiply. Smaller than the stress-campaign pool: the fleet runs
/// an order of magnitude more jobs.
struct Pool {
    classes: Vec<Vec<Rc<Csr<f64>>>>,
}

impl Pool {
    fn build(seed: u64) -> Pool {
        let dims = [24usize, 32, 48];
        let per_class = 4;
        let classes = dims
            .iter()
            .enumerate()
            .map(|(c, &n)| {
                (0..per_class)
                    .map(|i| {
                        let s = seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((c * per_class + i) as u64);
                        Rc::new(gen::uniform(n, n, n * 6, s))
                    })
                    .collect()
            })
            .collect();
        Pool { classes }
    }

    fn pick(&self, rng: &mut ChaCha8Rng) -> MatPair {
        let class = &self.classes[rng.gen_range(0..self.classes.len())];
        let a = Rc::clone(&class[rng.gen_range(0..class.len())]);
        let b = Rc::clone(&class[rng.gen_range(0..class.len())]);
        (a, b)
    }
}

/// Weighted tenant pick: 40% batch, 25% interactive, 20% analytics, 15%
/// free tier.
fn pick_tenant(rng: &mut ChaCha8Rng) -> TenantId {
    let roll = rng.gen_range(0..100u32);
    TenantId(match roll {
        0..=39 => 0,
        40..=64 => 1,
        65..=84 => 2,
        _ => 3,
    })
}

const SPORADIC_KINDS: [FaultKind; 3] =
    [FaultKind::StreamCorruption, FaultKind::DroppedWrite, FaultKind::BurstRefusal];

struct CampaignResult {
    json: String,
    resolved: u64,
    escapes: u64,
    pending_at_end: usize,
    quarantined_inputs: usize,
    breaker_closed: bool,
    full_breaker_cycle: bool,
    duplicate_completions: u64,
    duplicates_suppressed: u64,
    resumed_from_checkpoint: u64,
    worker_crashes: u64,
    worker_hangs: u64,
    worker_retirements: u64,
    completed_cpu: u64,
    final_cycle: u64,
    recovery_events_retained: usize,
    recovery_log_cap: usize,
}

fn run_campaign(opts: &Options) -> CampaignResult {
    let cfg = fleet_config(opts.seed, opts.jobs);
    let lanes = cfg.service.accel.num_lanes;
    let mut fleet = Fleet::new(cfg).expect("fleet config is valid");
    let pool = Pool::build(opts.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);

    let poison: MatPair = (
        Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_000))),
        Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_001))),
    );
    let poison_plan = FaultPlan::sample(FaultKind::ChannelStall, opts.seed ^ 0x50, lanes);
    let burst_pairs: Vec<MatPair> = (0..3)
        .map(|i| {
            (
                Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_100 + 2 * i))),
                Rc::new(gen::uniform(32, 32, 192, opts.seed.wrapping_add(9_101 + 2 * i))),
            )
        })
        .collect();
    let poison_at: Vec<u64> = [8u64, 4, 2].iter().map(|d| opts.jobs / d).collect();
    let breaker_burst_at = opts.jobs * 5 / 8;

    for j in 0..opts.jobs {
        if poison_at.contains(&j) {
            let spec = JobSpec {
                tenant: TenantId(1),
                a: Rc::clone(&poison.0),
                b: Rc::clone(&poison.1),
                plan: Some(poison_plan),
            };
            match fleet.submit(spec) {
                Ok(_) | Err(Rejected::Quarantined { .. }) => {}
                Err(e) => panic!("poison submission unexpectedly rejected: {e}"),
            }
        }
        if j == breaker_burst_at {
            // Drain first so the stall burst's failures land consecutively
            // (a clean completion in between would reset the breaker's
            // consecutive-failure count).
            fleet.run_to_idle();
            for (i, (a, b)) in burst_pairs.iter().enumerate() {
                let plan = FaultPlan::sample(
                    FaultKind::ChannelStall,
                    opts.seed ^ (0x60 + i as u64),
                    lanes,
                );
                let spec = JobSpec {
                    tenant: TenantId(0),
                    a: Rc::clone(a),
                    b: Rc::clone(b),
                    plan: Some(plan),
                };
                fleet.submit(spec).expect("burst submission");
                fleet.run_to_idle();
            }
        }

        let tenant = pick_tenant(&mut rng);
        // Sporadic hazardous jobs use dedicated operand pairs, not pool
        // picks: the fault plan rides the operands (persistent input-borne
        // fault model), so a pool pair that failed twice would be
        // quarantined and bounce every later *clean* use of it.
        let (a, b, plan) = if j > 0 && j % 97 == 0 {
            let kind = SPORADIC_KINDS[(j / 97) as usize % SPORADIC_KINDS.len()];
            let a = Rc::new(gen::uniform(28, 28, 150, opts.seed.wrapping_add(20_000 + 2 * j)));
            let b = Rc::new(gen::uniform(28, 28, 150, opts.seed.wrapping_add(20_001 + 2 * j)));
            (a, b, Some(FaultPlan::sample(kind, opts.seed ^ j, lanes)))
        } else {
            let (a, b) = pool.pick(&mut rng);
            (a, b, None)
        };
        match fleet.submit(JobSpec { tenant, a, b, plan }) {
            Ok(_) => {}
            Err(Rejected::Quarantined { .. }) | Err(Rejected::QueueFull { .. }) => {}
            Err(e) => panic!("background job {j} rejected: {e}"),
        }
        while fleet.pending() > TARGET_BACKLOG {
            if !fleet.step() {
                break;
            }
        }
    }
    fleet.run_to_idle();

    // Cooldown lap: if a late failure left the breaker open, a little
    // clean traffic lets it walk open → half-open → closed (the fleet
    // idle-advances to the reopen cycle when work is waiting). Bounded so
    // a genuinely stuck breaker still shows up as a strict failure.
    for i in 0..16usize {
        if fleet.breaker_state() == BreakerState::Closed {
            break;
        }
        let (a, b) = pool.pick(&mut rng);
        let spec = JobSpec { tenant: TenantId(i % 4), a, b, plan: None };
        if fleet.submit(spec).is_err() {
            break;
        }
        fleet.run_to_idle();
    }

    // ---- report ----
    let c = *fleet.counters();
    let f = *fleet.fleet_counters();
    let records = fleet.records();
    let resolved = records.len() as u64;
    let mut queue_waits: Vec<u64> = records.iter().map(|r| r.record.queue_wait()).collect();
    let mut service_cycles: Vec<u64> = records.iter().map(|r| r.record.service_cycles()).collect();
    queue_waits.sort_unstable();
    service_cycles.sort_unstable();
    let final_cycle = fleet.now().0;
    let jobs_per_gcycle = if final_cycle == 0 {
        0
    } else {
        (resolved as u128 * 1_000_000_000 / final_cycle as u128) as u64
    };

    // Per-worker utilization, pulled from the metrics registry — the same
    // counters any external scraper would see.
    let metrics = fleet.metrics();
    let worker_objects: Vec<String> = fleet
        .workers()
        .iter()
        .map(|w| {
            let i = w.id().0;
            let busy = metrics.counter(&format!("worker.{i}.busy_cycles")).unwrap_or(0);
            let utilization_pct =
                if final_cycle == 0 { 0 } else { (busy as u128 * 100 / final_cycle as u128) as u64 };
            format!(
                "{{\"id\":{i},\"class\":\"{}\",\"status\":\"{}\",\"lanes\":{},\"dispatches\":{},\"completed\":{},\"busy_cycles\":{busy},\"restarts\":{},\"utilization_pct\":{utilization_pct}}}",
                w.class().label(),
                w.status().label(),
                w.lanes(),
                metrics.counter(&format!("worker.{i}.dispatches")).unwrap_or(0),
                metrics.counter(&format!("worker.{i}.completed")).unwrap_or(0),
                metrics.counter(&format!("worker.{i}.restarts")).unwrap_or(0),
            )
        })
        .collect();

    let log = fleet.recovery_log();
    let count_kind = |label: &str| log.iter().filter(|e| e.kind.label() == label).count();
    let recovery_by_kind: Vec<String> = [
        "crash_detected",
        "hang_detected",
        "slowness_detected",
        "restarted",
        "degraded",
        "retired",
        "resumed_from_checkpoint",
        "restarted_from_scratch",
        "duplicate_suppressed",
    ]
    .iter()
    .map(|k| format!("\"{k}\":{}", count_kind(k)))
    .collect();
    let recovery_events: Vec<String> = log
        .iter()
        .take(48)
        .map(|e| {
            format!(
                "{{\"at\":{},\"worker\":{},\"kind\":\"{}\"}}",
                e.at.0,
                e.worker.0,
                e.kind.label()
            )
        })
        .collect();

    let transitions = fleet.breaker_transitions();
    let transition_objects: Vec<String> = transitions
        .iter()
        .map(|t| {
            format!(
                "{{\"at\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                t.at.0,
                t.from.label(),
                t.to.label()
            )
        })
        .collect();
    let has_edge = |from: BreakerState, to: BreakerState| {
        transitions.iter().any(|t| t.from == from && t.to == to)
    };
    let full_breaker_cycle = has_edge(BreakerState::Closed, BreakerState::Open)
        && has_edge(BreakerState::Open, BreakerState::HalfOpen)
        && has_edge(BreakerState::HalfOpen, BreakerState::Closed);
    let breaker_final = fleet.breaker_state();
    let pending_at_end = fleet.pending();
    let quarantined_inputs = fleet.quarantined_inputs();
    let cpu_records = records
        .iter()
        .filter(|r| fleet.workers()[r.worker.0].class() == WorkerClass::CpuFallback)
        .count() as u64;

    let body = format!(
        "{{\"campaign\":{{\"seed\":{},\"jobs_target\":{},\"accel_workers\":{ACCEL_WORKERS},\"cpu_workers\":{CPU_WORKERS},\"slice_cycles\":4096,\"heartbeat_window\":150000}},\
\"totals\":{{\"submitted\":{},\"accepted\":{},\"resolved\":{resolved},\"completed_accel\":{},\"completed_cpu\":{},\"deadline_exceeded\":{},\"failed\":{},\"retries\":{},\"escapes\":{},\"rejected_queue_full\":{},\"rejected_quarantined\":{},\"rejected_invalid\":{},\"quarantined_inputs\":{quarantined_inputs},\"pending_at_end\":{pending_at_end},\"resolved_on_cpu_workers\":{cpu_records}}},\
\"fleet\":{{\"worker_crashes\":{},\"worker_hangs\":{},\"worker_slowdowns\":{},\"slowness_detections\":{},\"worker_restarts\":{},\"worker_degradations\":{},\"worker_retirements\":{},\"redispatches\":{},\"resumed_from_checkpoint\":{},\"restarted_from_scratch\":{},\"duplicates_suppressed\":{},\"duplicate_completions\":{}}},\
\"recovery\":{{\"events\":{},\"dropped\":{},\"cap\":{},\"by_kind\":{{{}}},\"log\":[{}]}},\
\"workers\":[{}],\
\"slo\":{{\"final_cycle\":{final_cycle},\"jobs_per_gcycle\":{jobs_per_gcycle},\"queue_wait\":{{\"p50\":{},\"p99\":{}}},\"service_cycles\":{{\"p50\":{},\"p99\":{}}}}},\
\"breaker\":{{\"final\":\"{}\",\"full_cycle\":{full_breaker_cycle},\"transitions\":[{}]}},\
\"metrics_fingerprint\":\"{:#018x}\"",
        opts.seed,
        opts.jobs,
        c.submitted,
        c.accepted,
        c.completed_accel,
        c.completed_cpu,
        c.deadline_exceeded,
        c.failed,
        c.retries,
        c.escapes,
        c.rejected_queue_full,
        c.rejected_quarantined,
        c.rejected_invalid,
        f.worker_crashes,
        f.worker_hangs,
        f.worker_slowdowns,
        f.slowness_detections,
        f.worker_restarts,
        f.worker_degradations,
        f.worker_retirements,
        f.redispatches,
        f.resumed_from_checkpoint,
        f.restarted_from_scratch,
        f.duplicates_suppressed,
        f.duplicate_completions,
        log.len(),
        fleet.recovery_events_dropped(),
        fleet.recovery_log_cap(),
        recovery_by_kind.join(","),
        recovery_events.join(","),
        worker_objects.join(","),
        percentile(&queue_waits, 50),
        percentile(&queue_waits, 99),
        percentile(&service_cycles, 50),
        percentile(&service_cycles, 99),
        breaker_final.label(),
        transition_objects.join(","),
        metrics.fingerprint(),
    );
    let json = format!("{body},\"report_fnv1a\":\"{:#018x}\"}}", fnv1a64(body.as_bytes()));

    CampaignResult {
        json,
        resolved,
        escapes: c.escapes,
        pending_at_end,
        quarantined_inputs,
        breaker_closed: breaker_final == BreakerState::Closed,
        full_breaker_cycle,
        duplicate_completions: f.duplicate_completions,
        duplicates_suppressed: f.duplicates_suppressed,
        resumed_from_checkpoint: f.resumed_from_checkpoint,
        worker_crashes: f.worker_crashes,
        worker_hangs: f.worker_hangs,
        worker_retirements: f.worker_retirements,
        completed_cpu: c.completed_cpu,
        final_cycle,
        recovery_events_retained: fleet.recovery_log().len(),
        recovery_log_cap: fleet.recovery_log_cap(),
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "Fleet campaign — seed {:#x}, {} jobs across {} accel + {} CPU workers\n",
        opts.seed, opts.jobs, ACCEL_WORKERS, CPU_WORKERS
    );
    let wall_start = Instant::now();
    let result = run_campaign(&opts);
    let wall = wall_start.elapsed().as_secs_f64().max(1e-9);

    println!("resolved jobs          {}", result.resolved);
    println!("abft escapes           {}", result.escapes);
    println!("worker crashes         {}", result.worker_crashes);
    println!("worker hangs           {}", result.worker_hangs);
    println!("worker retirements     {}", result.worker_retirements);
    println!("checkpoint resumes     {}", result.resumed_from_checkpoint);
    println!("double completions     {}", result.duplicate_completions);
    println!("lost-acks suppressed   {}", result.duplicates_suppressed);
    println!("completed on CPU tier  {}", result.completed_cpu);
    println!("quarantined inputs     {}", result.quarantined_inputs);
    println!(
        "breaker                {} (full cycle: {})",
        if result.breaker_closed { "closed" } else { "NOT CLOSED" },
        result.full_breaker_cycle
    );
    println!("pending at end         {}", result.pending_at_end);
    println!("wall time              {wall:.2}s ({:.0} jobs/s)", result.resolved as f64 / wall);

    // Wall-clock throughput goes in its own file, outside the
    // deterministic report.
    let bench_json = format!(
        "{{\"bench\":\"fleet_campaign\",\"seed\":{},\"jobs_resolved\":{},\"sim_cycles\":{},\"wall_seconds\":{:.3},\"jobs_per_wall_second\":{:.1},\"sim_cycles_per_wall_second\":{:.0}}}",
        opts.seed,
        result.resolved,
        result.final_cycle,
        wall,
        result.resolved as f64 / wall,
        result.final_cycle as f64 / wall,
    );
    let bench_path = opts.bench_out.as_deref().unwrap_or("BENCH_fleet.json");
    if let Err(e) = std::fs::write(bench_path, format!("{bench_json}\n")) {
        eprintln!("warning: could not write {bench_path}: {e}");
    } else {
        println!("wrote {bench_path}");
    }

    if opts.json {
        println!("\n{}", result.json);
    }

    if opts.strict {
        let mut failures: Vec<String> = Vec::new();
        if result.escapes > 0 {
            failures.push(format!("{} ABFT escape(s)", result.escapes));
        }
        if result.duplicate_completions > 0 {
            failures.push(format!(
                "{} double-completion(s): at-most-once accounting broken",
                result.duplicate_completions
            ));
        }
        if result.resolved < opts.jobs {
            failures.push(format!("only {} of {} jobs resolved", result.resolved, opts.jobs));
        }
        if result.pending_at_end != 0 {
            failures.push(format!("{} job(s) stuck in queue", result.pending_at_end));
        }
        if result.resumed_from_checkpoint == 0 {
            failures.push("no job ever resumed from a checkpoint".to_string());
        }
        if result.worker_crashes == 0 || result.worker_hangs == 0 {
            failures.push("the fault script failed to kill/hang any worker".to_string());
        }
        if result.worker_retirements == 0 {
            failures.push("no worker walked the full ladder to retirement".to_string());
        }
        if result.completed_cpu == 0 {
            failures.push("nothing was shed to the CPU tier".to_string());
        }
        if result.duplicates_suppressed == 0 {
            failures.push("the lost-ack race was never exercised".to_string());
        }
        if !result.breaker_closed {
            failures.push("breaker stuck open at campaign end".to_string());
        }
        if !result.full_breaker_cycle {
            failures.push("no full breaker cycle observed".to_string());
        }
        if result.quarantined_inputs == 0 {
            failures.push("no input was quarantined".to_string());
        }
        if result.recovery_events_retained > result.recovery_log_cap {
            failures.push(format!(
                "recovery log breached its cap: {} retained > {}",
                result.recovery_events_retained, result.recovery_log_cap
            ));
        }
        // Replay determinism: the whole campaign, byte for byte —
        // including the recovery log and every worker's failure history.
        let replay = run_campaign(&opts);
        if replay.json != result.json {
            failures.push("report is not byte-identical across two runs".to_string());
        } else {
            println!("\nstrict: replay report byte-identical ({} bytes)", result.json.len());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("STRICT: {f}");
            }
            std::process::exit(1);
        }
        println!("strict: all acceptance checks passed");
    }
}
