//! Section VII — CSR → C²SR format-conversion overhead.
//!
//! The paper measures conversion at ~12 % of SpGEMM execution time on
//! average, and argues the O(nnz) cost is amortised against SpGEMM's
//! O(nnz²/N) work. This binary simulates the conversion unit against the
//! same HBM model and compares its time to the simulated A×A time.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fmt_conversion -- [--scale N] [--seed N] [--json]`

use matraptor_bench::{geomean, load_suite, print_table, Options};
use matraptor_core::{conversion_cycles, Accelerator, MatRaptorConfig};

fn main() {
    let opts = Options::from_args();
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let accel = Accelerator::new(cfg.clone());

    println!("Section VII — CSR->C2SR conversion vs SpGEMM time (scale 1/{})\n", opts.scale);
    let mut rows = Vec::new();
    let mut fracs = Vec::new();
    let mut json_rows = Vec::new();
    for m in load_suite(&opts) {
        let conv = conversion_cycles(&m.matrix, &cfg);
        let outcome = accel.run(&m.matrix, &m.matrix);
        let conv_s = conv.elapsed_seconds();
        let spgemm_s = outcome.stats.elapsed_seconds();
        let frac = conv_s / spgemm_s;
        fracs.push(frac);
        rows.push(vec![
            m.spec.id.to_string(),
            format!("{}", conv.mem_cycles),
            format!("{:.1}", conv_s * 1e6),
            format!("{:.1}", spgemm_s * 1e6),
            format!("{:.1}%", frac * 100.0),
        ]);
        json_rows.push(format!("{{\"id\":\"{}\",\"conversion_fraction\":{frac}}}", m.spec.id));
    }
    print_table(&["matrix", "conv mem cycles", "conv (us)", "SpGEMM (us)", "conv/SpGEMM"], &rows);
    println!(
        "\ngeomean conversion overhead {:.1}% of SpGEMM time (paper: ~12%)",
        geomean(&fracs) * 100.0
    );
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
}
