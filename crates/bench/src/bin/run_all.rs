//! Runs every experiment binary in sequence and collects their output
//! under `results/`, regenerating the data behind EXPERIMENTS.md in one
//! command.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin run_all -- [--scale N] [--seed N]`

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use matraptor_bench::Options;

/// Experiment binaries in presentation order; the bool marks those that
/// take the common `--scale/--seed` options.
const EXPERIMENTS: &[(&str, bool)] = &[
    ("table1_area_power", false),
    ("table2_datasets", true),
    ("fig06_bandwidth", true),
    ("fig07_roofline", true),
    ("fig08_speedup_energy", true),
    ("fig09_breakdown", true),
    ("fig10_axb", true),
    ("fig11_load_imbalance", true),
    ("fmt_conversion", true),
    ("dataflow_analysis", true),
    ("ablation_queues", true),
    ("ablation_design", true),
    ("sweep_scale", true),
];

fn main() {
    let opts = Options::from_args();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("create results/");

    println!(
        "running {} experiments at scale 1/{} into {}/",
        EXPERIMENTS.len(),
        opts.scale,
        out_dir.display()
    );
    let mut failures = 0;
    for &(name, takes_opts) in EXPERIMENTS {
        let mut cmd = Command::new(bin_dir.join(name));
        if takes_opts {
            cmd.args(["--scale", &opts.scale.to_string(), "--seed", &opts.seed.to_string()]);
        }
        print!("  {name:<24} ");
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                fs::write(&path, &out.stdout).expect("write result");
                println!("ok -> {}", path.display());
            }
            Ok(out) => {
                failures += 1;
                println!("FAILED (exit {:?})", out.status.code());
                eprintln!("{}", String::from_utf8_lossy(&out.stderr));
            }
            Err(e) => {
                failures += 1;
                println!("FAILED to spawn: {e} (build with `cargo build --release -p matraptor-bench` first)");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
    println!("\nall experiments complete; see EXPERIMENTS.md for the paper-vs-measured digest");
}
