//! Validates that stdin (or each file argument) is well-formed JSON.
//!
//! A thin CLI over [`matraptor_bench::json::validate`] — the same std-only
//! RFC 8259 checker the campaign binaries gate their own reports with —
//! so CI can pipe any hand-assembled JSON artifact through it:
//!
//! ```text
//! cargo run -p matraptor-conformance -- --json | cargo run -p matraptor-bench --bin json_lint
//! cargo run -p matraptor-bench --bin json_lint -- report.json trace.json
//! ```
//!
//! Exit status 0 when every input parses, 1 on the first malformed input,
//! 2 on I/O errors.

use std::io::Read;
use std::process::ExitCode;

use matraptor_bench::json::validate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "json_lint: validate JSON well-formedness (std-only RFC 8259 walk)\n\n\
             USAGE: json_lint [FILE...]   (no FILEs: read stdin)"
        );
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("json_lint: error: failed to read stdin: {e}");
            return ExitCode::from(2);
        }
        return check("<stdin>", &text);
    }
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("json_lint: error: failed to read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let status = check(path, &text);
        if status != ExitCode::SUCCESS {
            return status;
        }
    }
    ExitCode::SUCCESS
}

fn check(name: &str, text: &str) -> ExitCode {
    match validate(text) {
        Ok(()) => {
            println!("json_lint: {name}: ok ({} bytes)", text.len());
            ExitCode::SUCCESS
        }
        Err((offset, msg)) => {
            eprintln!("json_lint: {name}: malformed JSON at byte {offset}: {msg}");
            ExitCode::FAILURE
        }
    }
}
