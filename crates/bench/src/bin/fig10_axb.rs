//! Fig. 10 — A×B speedup and energy benefit over the bandwidth-normalised
//! GPU.
//!
//! Section V-D: real applications multiply *different* matrices, so the
//! paper takes the top-left 10K×10K tiles of pairs of Table II matrices
//! (the tiling technique of Kurt et al.) and reports MatRaptor vs
//! GPU-cuSPARSE with bandwidth normalisation. Paper geomeans: 26.8×
//! speedup, 1756.5× energy benefit.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fig10_axb -- [--scale N] [--seed N] [--json]`

use matraptor_baselines::{BandwidthNorm, GpuModel, Workload};
use matraptor_bench::{geomean, load_suite, print_table, Options};
use matraptor_core::{Accelerator, MatRaptorConfig};
use matraptor_energy::EnergyModel;
use matraptor_sparse::top_left;

fn main() {
    let opts = Options::from_args();
    let cfg = MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() };
    let accel = Accelerator::new(cfg);
    let gpu = GpuModel::default();
    let mat_energy = EnergyModel::matraptor();

    // The paper's tile is an absolute 10K x 10K regardless of the source
    // matrix; matrices already below that size (after scaling) contribute
    // their full extent.
    let tile = 10_000;
    let suite = load_suite(&opts);

    println!(
        "Fig. 10 — A x B on top-left {tile}x{tile} tiles, MatRaptor vs GPU-BW (scale 1/{})\n",
        opts.scale
    );

    // Pair consecutive matrices in Table II order (wg x m2, az x mb, ...),
    // a representative subset of the paper's all-pairs sweep.
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    let mut json_rows = Vec::new();
    for pair in suite.chunks(2) {
        let [ma, mb] = pair else { break };
        // Tiles must be conformable: clamp to the smaller matrix when a
        // scaled-down matrix is below the tile size.
        let k = tile.min(ma.matrix.rows()).min(mb.matrix.rows());
        let a = top_left(&ma.matrix, k);
        let b = top_left(&mb.matrix, k);
        let w = Workload::measure(&a, &b);
        if w.flops == 0 {
            continue;
        }
        let outcome = accel.run(&a, &b);
        let t_mat = outcome.stats.elapsed_seconds();
        let e_mat =
            mat_energy.energy_j(t_mat, outcome.stats.traffic_read + outcome.stats.traffic_written);
        let g = gpu.run(&w, BandwidthNorm::Normalized);
        let speedup = g.time_s / t_mat;
        let energy = g.energy_j / e_mat;
        speedups.push(speedup);
        energies.push(energy);
        rows.push(vec![
            format!("{} x {}", ma.spec.id, mb.spec.id),
            format!("{}", w.flops),
            format!("{}", w.nnz_c),
            format!("{:.1}", speedup),
            format!("{:.1}", energy),
        ]);
        json_rows.push(format!(
            "{{\"pair\":\"{}x{}\",\"speedup\":{speedup},\"energy_benefit\":{energy}}}",
            ma.spec.id, mb.spec.id
        ));
    }
    print_table(&["pair", "flops", "nnz(C)", "speedup vs GPU-BW", "energy benefit"], &rows);
    println!(
        "\ngeomean speedup {:.1}x (paper 26.8x), geomean energy benefit {:.1}x (paper 1756.5x)",
        geomean(&speedups),
        geomean(&energies)
    );
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
}
