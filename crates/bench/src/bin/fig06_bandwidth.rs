//! Fig. 6 — Achieved memory bandwidth with CSR vs C²SR.
//!
//! 2/4/8 PEs (one per channel) stream a sparse matrix out of memory. CSR
//! uses narrow 8 B element reads over a flat interleaved allocation (wider
//! requests would split across channels); C²SR issues 64 B streaming reads
//! into each PE's own channel. Paper numbers: CSR 3.4 / 7.2 / 15.2 GB/s,
//! C²SR 22.6 / 44.4 / 89.6 GB/s against peaks of 32 / 64 / 128 GB/s.
//!
//! Usage: `cargo run --release -p matraptor-bench --bin fig06_bandwidth -- [--scale N] [--seed N] [--json]`

use matraptor_bench::{print_table, Options};
use matraptor_mem::{patterns, HbmConfig};
use matraptor_sparse::gen::suite;

fn main() {
    let opts = Options::from_args();
    // The paper streams "a sparse matrix"; we use the amazon0312 stand-in
    // (row lengths in bytes at 8 B per entry).
    let spec = suite::by_id("az").expect("az is in Table II");
    let m = spec.generate(opts.scale, opts.seed);
    let row_bytes: Vec<u64> = (0..m.rows()).map(|i| m.row_nnz(i) as u64 * 8).collect();

    println!(
        "Fig. 6 — achieved bandwidth streaming {} ({} rows, {} nnz) with CSR vs C2SR\n",
        spec.name,
        m.rows(),
        m.nnz()
    );

    let paper = [(3.4, 22.6), (7.2, 44.4), (15.2, 89.6)];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (i, n) in [2usize, 4, 8].into_iter().enumerate() {
        let cfg = HbmConfig::with_channels(n);
        let csr = patterns::measure_bandwidth(&cfg, &patterns::csr_streams(&row_bytes, n, 8), 64)
            .expect("CSR drain");
        let c2sr =
            patterns::measure_bandwidth(&cfg, &patterns::c2sr_streams(&cfg, &row_bytes, n, 64), 64)
                .expect("C2SR drain");
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", csr.achieved_gbs),
            format!("{:.1}", paper[i].0),
            format!("{:.1}", c2sr.achieved_gbs),
            format!("{:.1}", paper[i].1),
            format!("{:.0}", cfg.peak_bandwidth_gbs()),
        ]);
        json_rows.push(format!(
            "{{\"channels\":{n},\"csr_gbs\":{},\"c2sr_gbs\":{},\"peak_gbs\":{}}}",
            csr.achieved_gbs,
            c2sr.achieved_gbs,
            cfg.peak_bandwidth_gbs()
        ));
    }
    print_table(&["channels/PEs", "CSR GB/s", "(paper)", "C2SR GB/s", "(paper)", "peak"], &rows);
    if opts.json {
        println!("\n[{}]", json_rows.join(",\n "));
    }
}
