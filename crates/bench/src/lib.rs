//! Shared helpers for the benchmark binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary under `src/bin/` reproduces one table or figure (see
//! DESIGN.md's experiment index). This library holds the common pieces:
//! CLI parsing for the `--scale`/`--seed` knobs, suite loading, and table
//! formatting.

pub mod harness;
pub mod json;

use matraptor_sparse::gen::suite::{table2, MatrixSpec};
use matraptor_sparse::Csr;

/// Common options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Divisor applied to Table II dimensions (1 = paper-scale, slow).
    pub scale: usize,
    /// Generator seed.
    pub seed: u64,
    /// Emit machine-readable JSON alongside the table.
    pub json: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 64, seed: 7, json: false }
    }
}

impl Options {
    /// Parses `--scale N`, `--seed N` and `--json` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    opts.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a positive integer"));
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--json" => opts.json = true,
                other => panic!("unknown argument {other}; supported: --scale N --seed N --json"),
            }
        }
        assert!(opts.scale > 0, "--scale must be positive");
        opts
    }
}

/// A generated benchmark matrix with its Table II identity.
#[derive(Debug, Clone)]
pub struct SuiteMatrix {
    /// The Table II row this matrix reproduces.
    pub spec: MatrixSpec,
    /// The generated matrix.
    pub matrix: Csr<f64>,
}

/// Generates the full Table II suite at the requested scale.
pub fn load_suite(opts: &Options) -> Vec<SuiteMatrix> {
    table2()
        .into_iter()
        .map(|spec| SuiteMatrix { spec, matrix: spec.generate(opts.scale, opts.seed) })
        .collect()
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Renders a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 16.0]) - 8.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn suite_loads_at_small_scale() {
        let suite = load_suite(&Options { scale: 512, seed: 1, json: false });
        assert_eq!(suite.len(), 14);
        assert!(suite.iter().all(|m| m.matrix.nnz() > 0));
    }
}
