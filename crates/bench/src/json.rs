//! A minimal JSON well-formedness checker.
//!
//! The campaign and trace binaries emit hand-assembled JSON (the workspace
//! is std-only, so there is no serde to round-trip through). This validator
//! is the CI gate that the assembled bytes actually parse: a strict
//! recursive-descent walk of RFC 8259 grammar that accepts exactly one
//! top-level value. It builds no tree and allocates nothing — validation
//! only.

/// Maximum container nesting the validator will recurse into. The walk
/// is recursive-descent, so without a bound a hostile input of a few
/// hundred kilobytes of `[` would overflow the thread stack; RFC 8259
/// explicitly allows implementations to set such a limit. 512 is far
/// deeper than any report this workspace emits.
pub const MAX_NESTING_DEPTH: usize = 512;

/// Returns `Ok(())` when `s` is exactly one well-formed JSON value
/// (surrounded by optional whitespace), or a byte offset + message
/// describing the first violation.
pub fn validate(s: &str) -> Result<(), (usize, &'static str)> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err((pos, "trailing bytes after the top-level value"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), (usize, &'static str)> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(_) => Err((*pos, "unexpected byte where a value was expected")),
        None => Err((*pos, "unexpected end of input where a value was expected")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), (usize, &'static str)> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err((*pos, "malformed literal (expected true/false/null)"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), (usize, &'static str)> {
    if depth >= MAX_NESTING_DEPTH {
        return Err((*pos, "nesting deeper than MAX_NESTING_DEPTH"));
    }
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err((*pos, "object member must start with a string key"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err((*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), (usize, &'static str)> {
    if depth >= MAX_NESTING_DEPTH {
        return Err((*pos, "nesting deeper than MAX_NESTING_DEPTH"));
    }
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    *pos += 1; // consume '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err((*pos, "\\u escape needs four hex digits"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err((*pos, "invalid escape sequence in string")),
                }
            }
            0x00..=0x1F => return Err((*pos, "unescaped control character in string")),
            _ => *pos += 1, // UTF-8 continuation bytes pass through unchecked
        }
    }
    Err((*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit followed by any digits.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err((*pos, "malformed number: missing integer part")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err((*pos, "malformed number: missing fraction digits"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err((*pos, "malformed number: missing exponent digits"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"esc \\\" \\\\ \\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x","d":false}"#,
            "  {\n\t\"k\" : [ 1 , 2 ] }  ",
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"dur\":5}]}",
        ] {
            assert_eq!(validate(ok), Ok(()), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "tru",
            "{} extra",
            "[1] [2]",
            "\"ctrl \u{0}\"",
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn reports_the_offset_of_the_first_violation() {
        let (pos, _) = validate("[1, 2, oops]").unwrap_err();
        assert_eq!(pos, 7);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // A megabyte of '[' used to recurse once per byte and blow the
        // thread stack; now it must return a depth error.
        let hostile = "[".repeat(1 << 20);
        let (_, why) = validate(&hostile).unwrap_err();
        assert!(why.contains("MAX_NESTING_DEPTH"), "got: {why}");
        // Same for objects.
        let hostile = "{\"k\":".repeat(1 << 18);
        let (_, why) = validate(&hostile).unwrap_err();
        assert!(why.contains("MAX_NESTING_DEPTH"), "got: {why}");
        // Nesting at exactly the limit still validates.
        let depth = MAX_NESTING_DEPTH;
        let fine = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert_eq!(validate(&fine), Ok(()));
        let over = format!("{}1{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert!(validate(&over).is_err());
    }
}
