//! Minimal micro-benchmark harness.
//!
//! The offline build environment cannot fetch `criterion`, so the
//! `benches/*.rs` targets use this std-only harness instead: warm-up, a
//! fixed measurement budget per benchmark, and median-of-samples reporting.
//! Timing uses wall-clock `Instant` — which is fine here because the bench
//! crate measures *host* simulation throughput, not modelled cycles (the
//! conformance `determinism` rule bans `Instant` only in simulator-state
//! crates).

use std::time::{Duration, Instant};

/// Hard cap on samples per benchmark, so a sub-microsecond body under a
/// generous budget cannot accumulate unbounded memory.
const MAX_SAMPLES: usize = 10_000;

/// One benchmark group, mirroring criterion's `benchmark_group` shape.
#[derive(Debug)]
pub struct Group {
    name: String,
    /// Measurement budget per benchmark.
    budget: Duration,
    /// Minimum number of timed samples.
    min_samples: usize,
}

impl Group {
    /// Creates a group with the default budget (0.5 s per benchmark).
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group { name: name.to_string(), budget: Duration::from_millis(500), min_samples: 10 }
    }

    /// Overrides the per-benchmark measurement budget. A zero (or
    /// over-tight) budget is honoured gracefully: at least one timed
    /// sample is always taken, and benchmarks whose sample count was
    /// dictated by a clamp rather than the budget are marked
    /// `budget-clipped` in the output.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f` repeatedly and prints `group/name  median  (samples)`.
    ///
    /// Returns the median per-iteration time so callers can assert on it.
    pub fn bench<F, R>(&self, name: &str, mut f: F) -> Duration
    where
        F: FnMut() -> R,
    {
        let (median, n, clipped) = self.run(&mut f);
        println!(
            "  {:<40} {:>12.3?} (n={}{})",
            format!("{}/{}", self.name, name),
            median,
            n,
            if clipped { ", budget-clipped" } else { "" }
        );
        median
    }

    /// The measurement loop behind [`bench`](Group::bench). The returned
    /// flag reports whether the sample count was decided by a clamp (the
    /// minimum-sample floor outlasting the budget, or the [`MAX_SAMPLES`]
    /// cap) instead of by the budget itself.
    fn run<F, R>(&self, f: &mut F) -> (Duration, usize, bool)
    where
        F: FnMut() -> R,
    {
        // One warm-up iteration, then sample until the budget is spent.
        let _ = std::hint::black_box(f());
        let mut samples: Vec<Duration> = Vec::new();
        let started = Instant::now();
        let mut overtight = false;
        // `loop` rather than a guarded `while`: the first sample is taken
        // unconditionally, so the median below is total by construction
        // even under `budget(Duration::ZERO)`.
        let clipped = loop {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            samples.push(t0.elapsed());
            if samples.len() >= MAX_SAMPLES {
                break true;
            }
            let have_min = samples.len() >= self.min_samples.max(1);
            let budget_spent = started.elapsed() >= self.budget;
            if budget_spent && !have_min {
                // The budget ran out first; we keep sampling to the floor,
                // but the count no longer reflects the requested budget.
                overtight = true;
            }
            if budget_spent && have_min {
                break overtight;
            }
        };
        samples.sort_unstable();
        (samples[samples.len() / 2], samples.len(), clipped)
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
///
/// Uses the standard nearest-rank definition: the p-th percentile is the
/// smallest value such that at least `p%` of the samples are ≤ it —
/// `sorted[ceil(p·N/100) − 1]`, with `p = 0` mapping to the minimum and
/// `p = 100` to the maximum. `p` above 100 is clamped; an empty slice
/// yields 0.
///
/// This replaces the floor-interpolation form
/// (`sorted[(N−1)·p/100]`) previously open-coded in `stress_campaign`,
/// which under-reported upper percentiles — e.g. for `N = 10` it returned
/// the 9th-ranked sample as "p99" instead of the 10th.
pub fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.min(100);
    let n = sorted.len() as u64;
    let rank = (p * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 0), 0);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[], 100), 0);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample_for_every_p() {
        for p in 0..=100 {
            assert_eq!(percentile(&[42], p), 42, "p{p}");
        }
    }

    #[test]
    fn percentile_endpoints_are_min_and_max() {
        for n in 1..=20u64 {
            let v: Vec<u64> = (1..=n).collect();
            assert_eq!(percentile(&v, 0), 1, "p0 of N={n}");
            assert_eq!(percentile(&v, 100), n, "p100 of N={n}");
        }
    }

    #[test]
    fn percentile_matches_nearest_rank_reference_for_small_n() {
        // Cross-check every (N ≤ 12, p ≤ 100) pair against a direct
        // transcription of the nearest-rank definition: the smallest value
        // with at least p% of samples ≤ it.
        for n in 1..=12u64 {
            let v: Vec<u64> = (0..n).map(|i| 10 * i).collect();
            for p in 0..=100u64 {
                let want = if p == 0 {
                    v[0]
                } else {
                    *v.iter()
                        .find(|&&x| {
                            let le = v.iter().filter(|&&y| y <= x).count() as u64;
                            100 * le >= p * n
                        })
                        .unwrap()
                };
                assert_eq!(percentile(&v, p), want, "N={n} p={p}");
            }
        }
    }

    #[test]
    fn percentile_upper_ranks_are_not_floored() {
        // The motivating bug: N=10, p99 must be the maximum (rank 10),
        // not the 9th-ranked sample as floor interpolation gives.
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 99), 10);
        assert_eq!(percentile(&v, 91), 10);
        assert_eq!(percentile(&v, 90), 9);
        assert_eq!(percentile(&v, 50), 5);
        assert_eq!(percentile(&v, 51), 6);
    }

    #[test]
    fn percentile_handles_ties_and_out_of_range_p() {
        let v = [7, 7, 7, 9];
        assert_eq!(percentile(&v, 50), 7);
        assert_eq!(percentile(&v, 75), 7);
        assert_eq!(percentile(&v, 76), 9);
        assert_eq!(percentile(&v, 250), 9, "p > 100 clamps to the max");
    }

    #[test]
    fn zero_budget_still_produces_a_median_and_is_marked_clipped() {
        let g = Group::new("t").budget(Duration::ZERO);
        let mut calls = 0u32;
        let (median, n, clipped) = g.run(&mut || calls += 1);
        assert!(median >= Duration::ZERO);
        assert!(n >= 1, "at least one timed sample is structural");
        assert_eq!(n, g.min_samples, "the floor, not the budget, set the count");
        assert!(clipped, "an over-tight budget must be flagged");
        assert_eq!(calls, n as u32 + 1, "warm-up plus one call per sample");
    }

    #[test]
    fn generous_budget_is_not_marked_clipped() {
        let g = Group::new("t").budget(Duration::from_millis(5));
        let (_, n, clipped) = g.run(&mut || std::thread::sleep(Duration::from_micros(50)));
        assert!(n >= 10);
        assert!(!clipped, "the budget, not a clamp, ended this run");
    }

    #[test]
    fn instantaneous_bodies_hit_the_sample_cap_and_are_marked() {
        let g = Group::new("t").budget(Duration::from_secs(3600));
        let (_, n, clipped) = g.run(&mut || ());
        assert_eq!(n, MAX_SAMPLES);
        assert!(clipped, "the cap, not the budget, ended this run");
    }
}
