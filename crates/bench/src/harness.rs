//! Minimal micro-benchmark harness.
//!
//! The offline build environment cannot fetch `criterion`, so the
//! `benches/*.rs` targets use this std-only harness instead: warm-up, a
//! fixed measurement budget per benchmark, and median-of-samples reporting.
//! Timing uses wall-clock `Instant` — which is fine here because the bench
//! crate measures *host* simulation throughput, not modelled cycles (the
//! conformance `determinism` rule bans `Instant` only in simulator-state
//! crates).

use std::time::{Duration, Instant};

/// One benchmark group, mirroring criterion's `benchmark_group` shape.
#[derive(Debug)]
pub struct Group {
    name: String,
    /// Measurement budget per benchmark.
    budget: Duration,
    /// Minimum number of timed samples.
    min_samples: usize,
}

impl Group {
    /// Creates a group with the default budget (0.5 s per benchmark).
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group { name: name.to_string(), budget: Duration::from_millis(500), min_samples: 10 }
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f` repeatedly and prints `group/name  median  (samples)`.
    ///
    /// Returns the median per-iteration time so callers can assert on it.
    pub fn bench<F, R>(&self, name: &str, mut f: F) -> Duration
    where
        F: FnMut() -> R,
    {
        // One warm-up iteration, then sample until the budget is spent.
        let _ = std::hint::black_box(f());
        let mut samples: Vec<Duration> = Vec::new();
        let started = Instant::now();
        while samples.len() < self.min_samples || started.elapsed() < self.budget {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            samples.push(t0.elapsed());
            if samples.len() >= 10_000 {
                break;
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "  {:<40} {:>12.3?} (n={})",
            format!("{}/{}", self.name, name),
            median,
            samples.len()
        );
        median
    }
}
