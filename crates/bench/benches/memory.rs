//! Criterion benchmarks of the HBM model: request-processing throughput
//! of the simulator and the CSR/C²SR access-pattern drivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matraptor_mem::{patterns, Hbm, HbmConfig, MemRequest};
use matraptor_sim::Cycle;
use std::hint::black_box;

fn streaming_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbm_streaming");
    g.sample_size(20);
    g.bench_function("sequential_4k_bursts", |b| {
        b.iter(|| {
            let cfg = HbmConfig::default();
            let mut hbm = Hbm::new(cfg);
            let total = 4096u64;
            let mut submitted = 0u64;
            let mut completed = 0u64;
            let mut t = 0u64;
            while completed < total {
                let now = Cycle(t);
                while submitted < total
                    && hbm.submit(now, MemRequest::read(submitted, submitted * 64, 64))
                {
                    submitted += 1;
                }
                hbm.tick(now);
                while hbm.pop_response(now).is_some() {
                    completed += 1;
                }
                t += 1;
            }
            black_box(t)
        })
    });
    g.finish();
}

fn pattern_drivers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_patterns");
    g.sample_size(10);
    let rows: Vec<u64> = vec![200; 1000];
    for n in [2usize, 8] {
        let cfg = HbmConfig::with_channels(n);
        g.bench_with_input(BenchmarkId::new("csr", n), &cfg, |b, cfg| {
            let streams = patterns::csr_streams(&rows, n, 8);
            b.iter(|| black_box(patterns::measure_bandwidth(cfg, &streams, 64)))
        });
        g.bench_with_input(BenchmarkId::new("c2sr", n), &cfg, |b, cfg| {
            let streams = patterns::c2sr_streams(cfg, &rows, n, 64);
            b.iter(|| black_box(patterns::measure_bandwidth(cfg, &streams, 64)))
        });
    }
    g.finish();
}

criterion_group!(benches, streaming_reads, pattern_drivers);
criterion_main!(benches);
