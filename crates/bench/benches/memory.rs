//! Benchmarks of the HBM model: request-processing throughput of the
//! simulator and the CSR/C²SR access-pattern drivers. Uses the std-only
//! harness in `matraptor_bench::harness`.

use matraptor_bench::harness::Group;
use matraptor_mem::{patterns, Hbm, HbmConfig, MemRequest};
use matraptor_sim::Cycle;
use std::hint::black_box;

fn streaming_reads() {
    let g = Group::new("hbm_streaming");
    g.bench("sequential_4k_bursts", || {
        let cfg = HbmConfig::default();
        let mut hbm = Hbm::new(cfg);
        let total = 4096u64;
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut t = 0u64;
        while completed < total {
            let now = Cycle(t);
            while submitted < total
                && hbm.submit(now, MemRequest::read(submitted, submitted * 64, 64))
            {
                submitted += 1;
            }
            hbm.tick(now);
            while hbm.pop_response(now).is_some() {
                completed += 1;
            }
            t += 1;
        }
        black_box(t)
    });
}

fn pattern_drivers() {
    let g = Group::new("fig6_patterns");
    let rows: Vec<u64> = vec![200; 1000];
    for n in [2usize, 8] {
        let cfg = HbmConfig::with_channels(n);
        let streams = patterns::csr_streams(&rows, n, 8);
        g.bench(&format!("csr/{n}"), || black_box(patterns::measure_bandwidth(&cfg, &streams, 64)));
        let streams = patterns::c2sr_streams(&cfg, &rows, n, 64);
        g.bench(&format!("c2sr/{n}"), || {
            black_box(patterns::measure_bandwidth(&cfg, &streams, 64))
        });
    }
}

fn main() {
    streaming_reads();
    pattern_drivers();
}
