//! Criterion micro-benchmarks of the software SpGEMM kernels — the four
//! dataflows of Section II plus the CPU-style variants, on representative
//! Table II stand-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matraptor_sparse::gen::suite;
use matraptor_sparse::{spgemm, Csr};
use std::hint::black_box;

fn bench_matrices() -> Vec<(&'static str, Csr<f64>)> {
    // One power-law, one FEM band, one fixed-degree — small enough for
    // stable criterion runs.
    ["az", "p3", "mb"]
        .into_iter()
        .map(|id| {
            let spec = suite::by_id(id).expect("Table II id");
            (id, spec.generate(256, 42))
        })
        .collect()
}

fn row_wise_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_wise_kernels");
    for (id, a) in bench_matrices() {
        g.bench_with_input(BenchmarkId::new("gustavson", id), &a, |b, a| {
            b.iter(|| black_box(spgemm::gustavson(a, a)))
        });
        g.bench_with_input(BenchmarkId::new("dense_accumulator", id), &a, |b, a| {
            b.iter(|| black_box(spgemm::dense_accumulator(a, a)))
        });
        g.bench_with_input(BenchmarkId::new("heap_merge", id), &a, |b, a| {
            b.iter(|| black_box(spgemm::heap_merge(a, a)))
        });
    }
    g.finish();
}

fn dataflow_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow_kernels");
    for (id, a) in bench_matrices() {
        let a_csc = a.to_csc();
        g.bench_with_input(BenchmarkId::new("outer", id), &a, |b, a| {
            b.iter(|| black_box(spgemm::outer(&a_csc, a)))
        });
        g.bench_with_input(BenchmarkId::new("column_wise", id), &a, |b, _| {
            b.iter(|| black_box(spgemm::column_wise(&a_csc, &a_csc)))
        });
        // Inner product is O(N^2) dot products — bench only the smallest.
        if id == "mb" {
            g.bench_with_input(BenchmarkId::new("inner", id), &a, |b, a| {
                b.iter(|| black_box(spgemm::inner(a, &a_csc)))
            });
        }
    }
    g.finish();
}

fn format_conversions(c: &mut Criterion) {
    let mut g = c.benchmark_group("format_conversions");
    let a = suite::by_id("of").expect("of").generate(256, 42);
    g.bench_function("csr_to_c2sr_8ch", |b| {
        b.iter(|| black_box(matraptor_sparse::C2sr::from_csr(&a, 8)))
    });
    let c2sr = matraptor_sparse::C2sr::from_csr(&a, 8);
    g.bench_function("c2sr_to_csr", |b| b.iter(|| black_box(c2sr.to_csr())));
    g.bench_function("csr_to_csc", |b| b.iter(|| black_box(a.to_csc())));
    g.finish();
}

criterion_group!(benches, row_wise_kernels, dataflow_kernels, format_conversions);
criterion_main!(benches);
