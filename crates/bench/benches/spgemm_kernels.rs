//! Micro-benchmarks of the software SpGEMM kernels — the four dataflows of
//! Section II plus the CPU-style variants, on representative Table II
//! stand-ins. Uses the std-only harness in `matraptor_bench::harness`.

use matraptor_bench::harness::Group;
use matraptor_sparse::gen::suite;
use matraptor_sparse::{spgemm, Csr};
use std::hint::black_box;

fn bench_matrices() -> Vec<(&'static str, Csr<f64>)> {
    // One power-law, one FEM band, one fixed-degree — small enough for
    // stable runs.
    ["az", "p3", "mb"]
        .into_iter()
        .map(|id| {
            let spec = suite::by_id(id).expect("Table II id");
            (id, spec.generate(256, 42))
        })
        .collect()
}

fn row_wise_kernels() {
    let g = Group::new("row_wise_kernels");
    for (id, a) in bench_matrices() {
        g.bench(&format!("gustavson/{id}"), || black_box(spgemm::gustavson(&a, &a)));
        g.bench(&format!("dense_accumulator/{id}"), || {
            black_box(spgemm::dense_accumulator(&a, &a))
        });
        g.bench(&format!("heap_merge/{id}"), || black_box(spgemm::heap_merge(&a, &a)));
    }
}

fn dataflow_kernels() {
    let g = Group::new("dataflow_kernels");
    for (id, a) in bench_matrices() {
        let a_csc = a.to_csc();
        g.bench(&format!("outer/{id}"), || black_box(spgemm::outer(&a_csc, &a)));
        g.bench(&format!("column_wise/{id}"), || black_box(spgemm::column_wise(&a_csc, &a_csc)));
        // Inner product is O(N^2) dot products — bench only the smallest.
        if id == "mb" {
            g.bench(&format!("inner/{id}"), || black_box(spgemm::inner(&a, &a_csc)));
        }
    }
}

fn format_conversions() {
    let g = Group::new("format_conversions");
    let a = suite::by_id("of").expect("of").generate(256, 42);
    g.bench("csr_to_c2sr_8ch", || black_box(matraptor_sparse::C2sr::from_csr(&a, 8)));
    let c2sr = matraptor_sparse::C2sr::from_csr(&a, 8);
    g.bench("c2sr_to_csr", || black_box(c2sr.to_csr()));
    g.bench("csr_to_csc", || black_box(a.to_csc()));
}

fn main() {
    row_wise_kernels();
    dataflow_kernels();
    format_conversions();
}
