//! Criterion benchmarks of the cycle-level accelerator simulation itself
//! (host-side simulation throughput, not modelled hardware speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matraptor_core::{conversion_cycles, Accelerator, MatRaptorConfig};
use matraptor_sparse::gen::suite;
use std::hint::black_box;

fn no_verify() -> MatRaptorConfig {
    MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() }
}

fn accelerator_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator_sim");
    g.sample_size(10);
    for id in ["az", "p3", "mb"] {
        let a = suite::by_id(id).expect("Table II id").generate(256, 42);
        let accel = Accelerator::new(no_verify());
        g.bench_with_input(BenchmarkId::new("a_x_a", id), &a, |b, a| {
            b.iter(|| black_box(accel.run(a, a)))
        });
    }
    g.finish();
}

fn lane_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator_lanes");
    g.sample_size(10);
    let a = suite::by_id("az").expect("az").generate(256, 42);
    for lanes in [2usize, 4, 8] {
        let cfg = MatRaptorConfig {
            num_lanes: lanes,
            mem: matraptor_mem::HbmConfig::with_channels(lanes),
            verify_against_reference: false,
            ..MatRaptorConfig::default()
        };
        let accel = Accelerator::new(cfg);
        g.bench_with_input(BenchmarkId::new("lanes", lanes), &a, |b, a| {
            b.iter(|| black_box(accel.run(a, a)))
        });
    }
    g.finish();
}

fn conversion_unit(c: &mut Criterion) {
    let mut g = c.benchmark_group("format_conversion_sim");
    g.sample_size(10);
    let a = suite::by_id("of").expect("of").generate(256, 42);
    let cfg = no_verify();
    g.bench_function("csr_to_c2sr_unit", |b| {
        b.iter(|| black_box(conversion_cycles(&a, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, accelerator_runs, lane_scaling, conversion_unit);
criterion_main!(benches);
