//! Benchmarks of the cycle-level accelerator simulation itself (host-side
//! simulation throughput, not modelled hardware speed). Uses the std-only
//! harness in `matraptor_bench::harness`.

use matraptor_bench::harness::Group;
use matraptor_core::{conversion_cycles, Accelerator, MatRaptorConfig};
use matraptor_sparse::gen::suite;
use std::hint::black_box;

fn no_verify() -> MatRaptorConfig {
    MatRaptorConfig { verify_against_reference: false, ..MatRaptorConfig::default() }
}

fn accelerator_runs() {
    let g = Group::new("accelerator_sim");
    for id in ["az", "p3", "mb"] {
        let a = suite::by_id(id).expect("Table II id").generate(256, 42);
        let accel = Accelerator::new(no_verify());
        g.bench(&format!("a_x_a/{id}"), || black_box(accel.run(&a, &a)));
    }
}

fn lane_scaling() {
    let g = Group::new("accelerator_lanes");
    let a = suite::by_id("az").expect("az").generate(256, 42);
    for lanes in [2usize, 4, 8] {
        let cfg = MatRaptorConfig {
            num_lanes: lanes,
            mem: matraptor_mem::HbmConfig::with_channels(lanes),
            verify_against_reference: false,
            ..MatRaptorConfig::default()
        };
        let accel = Accelerator::new(cfg);
        g.bench(&format!("lanes/{lanes}"), || black_box(accel.run(&a, &a)));
    }
}

fn conversion_unit() {
    let g = Group::new("format_conversion_sim");
    let a = suite::by_id("of").expect("of").generate(256, 42);
    let cfg = no_verify();
    g.bench("csr_to_c2sr_unit", || black_box(conversion_cycles(&a, &cfg)));
}

fn main() {
    accelerator_runs();
    lane_scaling();
    conversion_unit();
}
